"""Voltage-controlled capacitances (varactors) for AM-FM SET circuits.

The paper suggests two physical knobs for modulating a SET's gate
capacitance: "a pn junction capacitance which can be modulated by its applied
bias or perhaps a suspended gate whose distance to the SET can be modulated".
Both are provided here as simple analytic capacitance laws; the AM-FM device
layer (:mod:`repro.devices.amfm_set`) and the logic layer consume them to turn
a control voltage into a gate capacitance.

At DC a varactor carries no current, so inside the compact solver it behaves
like :class:`~repro.compact.elements.CapacitorDC`; its value only matters to
the quasi-static drivers that rebuild the single-electron circuit per time
step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import CircuitError


@dataclass(frozen=True)
class JunctionVaractor:
    """Abrupt pn-junction depletion capacitance ``C(V) = C0 / sqrt(1 + V/Vbi)``.

    Parameters
    ----------
    zero_bias_capacitance:
        Capacitance at zero reverse bias, in farad.
    built_in_potential:
        Junction built-in potential in volt.
    grading_exponent:
        0.5 for an abrupt junction, ~0.33 for a linearly graded junction.
    """

    zero_bias_capacitance: float
    built_in_potential: float = 0.7
    grading_exponent: float = 0.5

    def __post_init__(self) -> None:
        if self.zero_bias_capacitance <= 0.0:
            raise CircuitError("zero-bias capacitance must be positive")
        if self.built_in_potential <= 0.0:
            raise CircuitError("built-in potential must be positive")
        if not 0.0 < self.grading_exponent < 1.0:
            raise CircuitError("grading exponent must lie in (0, 1)")

    def capacitance(self, reverse_bias: float) -> float:
        """Capacitance in farad at a reverse bias ``>= 0`` volt."""
        if reverse_bias < 0.0:
            raise CircuitError("varactor model expects a reverse bias (>= 0)")
        return self.zero_bias_capacitance / (
            (1.0 + reverse_bias / self.built_in_potential) ** self.grading_exponent)

    def bias_for_capacitance(self, target: float) -> float:
        """Reverse bias (volt) that yields ``target`` capacitance."""
        if target <= 0.0 or target > self.zero_bias_capacitance:
            raise CircuitError(
                "target capacitance must be positive and at most the zero-bias value"
            )
        ratio = self.zero_bias_capacitance / target
        return self.built_in_potential * (ratio ** (1.0 / self.grading_exponent) - 1.0)


@dataclass(frozen=True)
class SuspendedGateVaractor:
    """Parallel-plate capacitance of a movable (suspended) gate.

    ``C(x) = epsilon_0 * area / (gap - displacement(V))`` with an
    electrostatically actuated displacement proportional to the square of the
    actuation voltage (small-deflection limit).
    """

    area: float
    rest_gap: float
    pull_in_voltage: float = 1.0

    def __post_init__(self) -> None:
        if self.area <= 0.0 or self.rest_gap <= 0.0 or self.pull_in_voltage <= 0.0:
            raise CircuitError("area, rest gap and pull-in voltage must be positive")

    def capacitance(self, actuation_voltage: float) -> float:
        """Capacitance in farad for an actuation voltage below pull-in."""
        from ..constants import VACUUM_PERMITTIVITY

        displacement_fraction = (actuation_voltage / self.pull_in_voltage) ** 2 / 3.0
        displacement_fraction = min(displacement_fraction, 1.0 / 3.0)
        gap = self.rest_gap * (1.0 - displacement_fraction)
        return VACUUM_PERMITTIVITY * self.area / gap


@dataclass(frozen=True)
class Varactor:
    """A varactor wired into a compact circuit (open at DC)."""

    name: str
    node_a: str
    node_b: str
    model: JunctionVaractor

    @property
    def terminals(self) -> Tuple[str, ...]:
        """Connected nodes."""
        return (self.node_a, self.node_b)

    def terminal_currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """No DC current."""
        return {self.node_a: 0.0, self.node_b: 0.0}

    def capacitance(self, voltages: Mapping[str, float]) -> float:
        """Instantaneous capacitance given the node voltages."""
        bias = abs(voltages[self.node_a] - voltages[self.node_b])
        return self.model.capacitance(bias)


__all__ = ["JunctionVaractor", "SuspendedGateVaractor", "Varactor"]
