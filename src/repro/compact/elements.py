"""Passive elements and sources of the compact (SPICE-like) solver.

The compact solver works with *continuous* node voltages and device models
that return terminal currents — exactly the abstraction SPICE uses.  Devices
implement a tiny protocol:

``terminals``
    Ordered tuple of node names the device is connected to.
``terminal_currents(voltages)``
    Mapping terminal node -> current flowing *into* the device from that
    node (ampere), given a mapping of node name -> node voltage.

The Newton solver assembles Kirchhoff current equations from those terminal
currents; it differentiates them numerically, so models only need to be
reasonably smooth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import CircuitError


@dataclass(frozen=True)
class Resistor:
    """An ideal resistor between ``node_a`` and ``node_b``."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise CircuitError(
                f"resistor {self.name!r} must have positive resistance, "
                f"got {self.resistance!r}"
            )

    @property
    def terminals(self) -> Tuple[str, ...]:
        """Connected nodes."""
        return (self.node_a, self.node_b)

    def terminal_currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """Ohm's law: current into the device from each terminal."""
        current = (voltages[self.node_a] - voltages[self.node_b]) / self.resistance
        return {self.node_a: current, self.node_b: -current}


@dataclass(frozen=True)
class CurrentSource:
    """An ideal current source driving ``current`` ampere from ``node_a`` to ``node_b``.

    A positive ``current`` pulls conventional current out of ``node_a`` and
    pushes it into ``node_b`` (through the source), i.e. the source *injects*
    current into ``node_b``.
    """

    name: str
    node_a: str
    node_b: str
    current: float

    @property
    def terminals(self) -> Tuple[str, ...]:
        """Connected nodes."""
        return (self.node_a, self.node_b)

    def terminal_currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """Constant terminal currents, independent of the node voltages."""
        return {self.node_a: self.current, self.node_b: -self.current}


@dataclass(frozen=True)
class CapacitorDC:
    """A capacitor as seen by the DC solver: an open circuit.

    It is kept in the netlist so quasi-static transient drivers and netlist
    round-trips know about it, but it contributes no DC current.
    """

    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise CircuitError(
                f"capacitor {self.name!r} must have positive capacitance, "
                f"got {self.capacitance!r}"
            )

    @property
    def terminals(self) -> Tuple[str, ...]:
        """Connected nodes."""
        return (self.node_a, self.node_b)

    def terminal_currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """No DC current flows through an ideal capacitor."""
        return {self.node_a: 0.0, self.node_b: 0.0}


__all__ = ["Resistor", "CurrentSource", "CapacitorDC"]
