"""DC sweeps and quasi-static transient analysis for compact circuits.

``dc_sweep`` is the work-horse behind the hybrid SET-MOS experiments
(quantizer transfer curves, RNG operating points): it steps a voltage source,
re-solves the operating point (warm-starting Newton from the previous point to
follow the same branch) and records the requested node voltages and device
currents.

``quasi_static_transient`` drives time-dependent inputs (for example the
random-telegraph offset charge of the RNG) under the assumption that the
circuit settles much faster than the inputs move — which is excellent for
nanosecond-settling circuits driven by microsecond-scale noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import SolverError
from .circuit import CompactCircuit
from .solver import DCSolution, DCSolver


@dataclass
class SweepResult:
    """Result of a DC sweep.

    Attributes
    ----------
    sweep_values:
        The swept source values, in volt.
    node_voltages:
        Mapping node name -> array of voltages (one per sweep point).
    device_currents:
        Mapping device name -> array of first-terminal currents.
    """

    sweep_values: np.ndarray
    node_voltages: Dict[str, np.ndarray] = field(default_factory=dict)
    device_currents: Dict[str, np.ndarray] = field(default_factory=dict)

    def voltage(self, node: str) -> np.ndarray:
        """Recorded voltage trace of a node."""
        try:
            return self.node_voltages[node]
        except KeyError:
            raise SolverError(
                f"node {node!r} was not recorded; recorded nodes: "
                f"{sorted(self.node_voltages)}"
            ) from None

    def current(self, device: str) -> np.ndarray:
        """Recorded current trace of a device."""
        try:
            return self.device_currents[device]
        except KeyError:
            raise SolverError(
                f"device {device!r} was not recorded; recorded devices: "
                f"{sorted(self.device_currents)}"
            ) from None


def dc_sweep(circuit: CompactCircuit, source: str, values: Sequence[float],
             record_nodes: Optional[Sequence[str]] = None,
             record_devices: Optional[Sequence[str]] = None,
             solver: Optional[DCSolver] = None) -> SweepResult:
    """Sweep a voltage source and record node voltages / device currents.

    Parameters
    ----------
    circuit:
        The compact circuit (its source value is restored afterwards).
    source:
        Voltage-source name (or fixed-node name) to sweep.
    values:
        Source values in volt.
    record_nodes:
        Node names whose voltages are recorded (default: all free nodes).
    record_devices:
        Device names whose first-terminal current is recorded.
    solver:
        Optional pre-configured :class:`DCSolver`.
    """
    solver = solver or DCSolver(circuit)
    record_nodes = list(record_nodes) if record_nodes is not None \
        else circuit.free_nodes
    record_devices = list(record_devices or [])

    original = circuit.source_voltage(source)
    voltages_out: Dict[str, List[float]] = {node: [] for node in record_nodes}
    currents_out: Dict[str, List[float]] = {device: [] for device in record_devices}
    previous: Optional[Mapping[str, float]] = None
    try:
        for value in values:
            circuit.set_source_voltage(source, float(value))
            solution = solver.solve(initial_guess=previous)
            previous = solution.voltages
            for node in record_nodes:
                voltages_out[node].append(solution.voltage(node))
            for device in record_devices:
                currents_out[device].append(
                    circuit.device_current(device, solution.voltages))
    finally:
        circuit.set_source_voltage(source, original)

    return SweepResult(
        sweep_values=np.asarray(values, dtype=float),
        node_voltages={node: np.array(trace) for node, trace in voltages_out.items()},
        device_currents={device: np.array(trace)
                         for device, trace in currents_out.items()},
    )


@dataclass
class TransientResult:
    """Result of a quasi-static transient analysis."""

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray] = field(default_factory=dict)
    device_currents: Dict[str, np.ndarray] = field(default_factory=dict)

    def voltage(self, node: str) -> np.ndarray:
        """Recorded voltage trace of a node."""
        try:
            return self.node_voltages[node]
        except KeyError:
            raise SolverError(
                f"node {node!r} was not recorded; recorded nodes: "
                f"{sorted(self.node_voltages)}"
            ) from None

    def current(self, device: str) -> np.ndarray:
        """Recorded current trace of a device."""
        try:
            return self.device_currents[device]
        except KeyError:
            raise SolverError(
                f"device {device!r} was not recorded; recorded devices: "
                f"{sorted(self.device_currents)}"
            ) from None


def quasi_static_transient(circuit: CompactCircuit, times: Sequence[float],
                           update: Callable[[CompactCircuit, float], None],
                           record_nodes: Optional[Sequence[str]] = None,
                           record_devices: Optional[Sequence[str]] = None,
                           solver: Optional[DCSolver] = None) -> TransientResult:
    """Quasi-static transient: at each time step, update the circuit and re-solve.

    Parameters
    ----------
    circuit:
        The compact circuit.
    times:
        Time grid in seconds (only used to call ``update`` and label results;
        the circuit itself is solved statically at each point).
    update:
        Callback ``update(circuit, t)`` mutating sources/devices for time ``t``
        (e.g. applying the current value of a telegraph-noise waveform).
    record_nodes, record_devices, solver:
        As for :func:`dc_sweep`.
    """
    solver = solver or DCSolver(circuit)
    record_nodes = list(record_nodes) if record_nodes is not None \
        else circuit.free_nodes
    record_devices = list(record_devices or [])

    voltages_out: Dict[str, List[float]] = {node: [] for node in record_nodes}
    currents_out: Dict[str, List[float]] = {device: [] for device in record_devices}
    previous: Optional[Mapping[str, float]] = None
    for time in times:
        update(circuit, float(time))
        solution = solver.solve(initial_guess=previous)
        previous = solution.voltages
        for node in record_nodes:
            voltages_out[node].append(solution.voltage(node))
        for device in record_devices:
            currents_out[device].append(
                circuit.device_current(device, solution.voltages))

    return TransientResult(
        times=np.asarray(times, dtype=float),
        node_voltages={node: np.array(trace) for node, trace in voltages_out.items()},
        device_currents={device: np.array(trace)
                         for device, trace in currents_out.items()},
    )


__all__ = ["SweepResult", "TransientResult", "dc_sweep", "quasi_static_transient"]
