"""A compact MOSFET model for hybrid SET-MOS circuits.

The paper's applications (§3) rely on "a series connection of a MOSFET with an
SET": the MOSFET supplies gain and acts as a (tunable) current source, the SET
supplies the periodic characteristic.  A simple continuous square-law model
with smooth weak-inversion (subthreshold) behaviour and channel-length
modulation is entirely sufficient for that role and keeps the solver robust.

The drain current of an n-channel device is modelled with the single-piece
EKV-style interpolation::

    I_D = 2 n k (U_T)^2 * [ln(1 + exp((V_GS - V_T)/(2 n U_T)))]^2
          * (1 + lambda * V_DS) * f_sat(V_DS)

which reduces to the familiar square law in strong inversion and to an
exponential in weak inversion.  P-channel devices are obtained by mirroring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..constants import BOLTZMANN, E_CHARGE
from ..errors import CircuitError

#: Thermal voltage at 300 K, used as the default subthreshold scale.
THERMAL_VOLTAGE_300K = BOLTZMANN * 300.0 / E_CHARGE


@dataclass(frozen=True)
class MOSFETModel:
    """Parameter set of a compact MOSFET.

    Parameters
    ----------
    transconductance:
        ``k = 0.5 mu C_ox W/L`` in A/V^2.
    threshold_voltage:
        Threshold voltage ``V_T`` in volt (positive for NMOS, the magnitude is
        used for PMOS).
    subthreshold_slope_factor:
        Ideality factor ``n`` (1.0-1.8 typical).
    channel_length_modulation:
        ``lambda`` in 1/V.
    thermal_voltage:
        ``U_T = k_B T / e`` in volt; defaults to the 300 K value.
    polarity:
        ``"nmos"`` or ``"pmos"``.
    """

    transconductance: float = 1e-4
    threshold_voltage: float = 0.4
    subthreshold_slope_factor: float = 1.3
    channel_length_modulation: float = 0.02
    thermal_voltage: float = THERMAL_VOLTAGE_300K
    polarity: str = "nmos"

    def __post_init__(self) -> None:
        if self.transconductance <= 0.0:
            raise CircuitError("transconductance must be positive")
        if self.subthreshold_slope_factor < 1.0:
            raise CircuitError("subthreshold slope factor must be >= 1")
        if self.thermal_voltage <= 0.0:
            raise CircuitError("thermal voltage must be positive")
        if self.polarity not in ("nmos", "pmos"):
            raise CircuitError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")

    @property
    def is_nmos(self) -> bool:
        """Whether the device is n-channel."""
        return self.polarity == "nmos"

    def drain_current(self, gate_source_voltage: float,
                      drain_source_voltage: float) -> float:
        """Drain current in ampere for the given terminal voltages.

        For PMOS devices pass the physical (negative) voltages; the model
        mirrors them internally.
        """
        vgs = gate_source_voltage if self.is_nmos else -gate_source_voltage
        vds = drain_source_voltage if self.is_nmos else -drain_source_voltage
        sign = 1.0 if self.is_nmos else -1.0
        if vds < 0.0:
            # Source and drain swap roles; exploit device symmetry.
            return -sign * self._forward_current(vgs - vds, -vds)
        return sign * self._forward_current(vgs, vds)

    def _forward_current(self, vgs: float, vds: float) -> float:
        n = self.subthreshold_slope_factor
        ut = self.thermal_voltage
        overdrive = (vgs - self.threshold_voltage) / (2.0 * n * ut)
        # Smooth interpolation of the inversion charge.
        if overdrive > 40.0:
            inversion = overdrive * 2.0 * n * ut
        else:
            inversion = 2.0 * n * ut * math.log1p(math.exp(overdrive))
        saturation_voltage = max(inversion, 1e-12)
        # Smooth triode/saturation transition.
        if vds < saturation_voltage:
            shape = vds / saturation_voltage * (2.0 - vds / saturation_voltage)
        else:
            shape = 1.0
        current = self.transconductance * inversion**2 * shape
        current *= 1.0 + self.channel_length_modulation * vds
        return current

    def saturation_current(self, gate_source_voltage: float) -> float:
        """Saturation (plateau) current for a given gate drive, in ampere."""
        probe_vds = 10.0 * max(self.threshold_voltage, 0.1)
        return abs(self.drain_current(gate_source_voltage, probe_vds
                                      if self.is_nmos else -probe_vds))

    def gate_voltage_for_current(self, target_current: float,
                                 drain_source_voltage: float,
                                 lower: float = -2.0, upper: float = 5.0,
                                 iterations: int = 80) -> float:
        """Gate-source voltage that produces ``target_current`` (bisection).

        Used to bias the MOSFET of a SET-MOS stack as a current source of a
        prescribed value.
        """
        if target_current <= 0.0:
            raise CircuitError("target current must be positive")
        low, high = lower, upper
        for _ in range(iterations):
            middle = 0.5 * (low + high)
            current = abs(self.drain_current(middle if self.is_nmos else -middle,
                                             drain_source_voltage))
            if current < target_current:
                low = middle
            else:
                high = middle
        return 0.5 * (low + high) if self.is_nmos else -0.5 * (low + high)


@dataclass(frozen=True)
class MOSFET:
    """A MOSFET instance wired into a compact circuit."""

    name: str
    drain: str
    gate: str
    source: str
    model: MOSFETModel

    @property
    def terminals(self) -> Tuple[str, ...]:
        """Connected nodes (the gate draws no current)."""
        return (self.drain, self.gate, self.source)

    def terminal_currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """Drain/source currents; the gate is an ideal insulator."""
        vgs = voltages[self.gate] - voltages[self.source]
        vds = voltages[self.drain] - voltages[self.source]
        drain_current = self.model.drain_current(vgs, vds)
        return {self.drain: drain_current, self.gate: 0.0, self.source: -drain_current}


__all__ = ["MOSFETModel", "MOSFET", "THERMAL_VOLTAGE_300K"]
