"""SPICE-like compact-model circuit solver for hybrid SET-MOS designs."""

from .circuit import GROUND, CompactCircuit
from .elements import CapacitorDC, CurrentSource, Resistor
from .mosfet import MOSFET, MOSFETModel, THERMAL_VOLTAGE_300K
from .set_model import AnalyticSETModel, MasterEquationSETModel, SETDevice, TunableSETModel
from .solver import DCSolution, DCSolver
from .sweep import SweepResult, TransientResult, dc_sweep, quasi_static_transient
from .varactor import JunctionVaractor, SuspendedGateVaractor, Varactor

__all__ = [
    "AnalyticSETModel",
    "CapacitorDC",
    "CompactCircuit",
    "CurrentSource",
    "DCSolution",
    "DCSolver",
    "GROUND",
    "JunctionVaractor",
    "MOSFET",
    "MOSFETModel",
    "MasterEquationSETModel",
    "Resistor",
    "SETDevice",
    "SuspendedGateVaractor",
    "SweepResult",
    "THERMAL_VOLTAGE_300K",
    "TransientResult",
    "TunableSETModel",
    "Varactor",
    "dc_sweep",
    "quasi_static_transient",
]
