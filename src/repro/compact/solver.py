"""Newton-Raphson DC solver for compact circuits.

This is the "SPICE-based simulator" half of the paper's §4: nodal analysis of
circuits containing compact device models (MOSFETs, analytic SETs, resistors,
current sources).  Unknowns are the voltages of the free nodes; the equations
are Kirchhoff's current law at every free node.  The Jacobian is evaluated by
finite differences, which keeps device models trivially simple at the cost of
a few extra model evaluations — irrelevant for the circuit sizes of interest.

Robustness measures:

* adaptive damping (step halving) when a Newton step increases the residual,
* automatic multi-start (gmin-style homotopy over initial guesses) when plain
  Newton fails, which matters because the SET's periodic characteristic gives
  the KCL equations many near-solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError, SolverError
from .circuit import CompactCircuit


@dataclass
class DCSolution:
    """Solution of a DC operating point."""

    voltages: Dict[str, float]
    iterations: int
    residual_norm: float

    def voltage(self, node: str) -> float:
        """Voltage of a node (fixed or free), in volt."""
        try:
            return self.voltages[node]
        except KeyError:
            raise SolverError(
                f"unknown node {node!r}; known nodes: {sorted(self.voltages)}"
            ) from None


class DCSolver:
    """Newton-Raphson solver for :class:`CompactCircuit` operating points.

    Parameters
    ----------
    circuit:
        The compact circuit to solve.
    max_iterations:
        Newton iteration budget per start point.
    tolerance:
        Convergence threshold on the infinity norm of the KCL residual, in
        ampere.
    voltage_step:
        Finite-difference step for the numerical Jacobian, in volt.
    """

    def __init__(self, circuit: CompactCircuit, max_iterations: int = 100,
                 tolerance: float = 1e-12, voltage_step: float = 1e-6) -> None:
        if max_iterations < 1:
            raise SolverError("max_iterations must be at least 1")
        if tolerance <= 0.0 or voltage_step <= 0.0:
            raise SolverError("tolerance and voltage_step must be positive")
        self.circuit = circuit
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.voltage_step = voltage_step

    # -------------------------------------------------------------- interface

    def solve(self, initial_guess: Optional[Mapping[str, float]] = None) -> DCSolution:
        """Find the DC operating point.

        Parameters
        ----------
        initial_guess:
            Optional starting voltages for (a subset of) the free nodes.
            Unspecified nodes start at 0 V.  Sweeps pass the previous solution
            here to track a branch continuously.
        """
        free = self.circuit.free_nodes
        if not free:
            return DCSolution(voltages=dict(self.circuit.fixed_nodes), iterations=0,
                              residual_norm=0.0)

        starts = self._starting_points(free, initial_guess)
        failure: Optional[ConvergenceError] = None
        for start in starts:
            try:
                return self._newton(free, start)
            except ConvergenceError as exc:
                failure = exc
        assert failure is not None
        raise failure

    def operating_point(self, **node_voltages: float) -> DCSolution:
        """Convenience wrapper: solve with keyword initial guesses."""
        return self.solve(initial_guess=node_voltages or None)

    # -------------------------------------------------------------- internals

    def _starting_points(self, free: List[str],
                         initial_guess: Optional[Mapping[str, float]]
                         ) -> List[np.ndarray]:
        zero = np.zeros(len(free))
        points = []
        if initial_guess is not None:
            guess = np.array([float(initial_guess.get(node, 0.0)) for node in free])
            points.append(guess)
        points.append(zero)
        # Mid-rail and rail starts help when the circuit hangs devices between
        # supplies (the quantizer and RNG circuits do).
        fixed = self.circuit.fixed_nodes
        if fixed:
            high = max(fixed.values())
            low = min(fixed.values())
            if high != 0.0 or low != 0.0:
                points.append(np.full(len(free), 0.5 * (high + low)))
                points.append(np.full(len(free), high))
                points.append(np.full(len(free), low))
        return points

    def _assemble_voltages(self, free: List[str], values: np.ndarray
                           ) -> Dict[str, float]:
        voltages = dict(self.circuit.fixed_nodes)
        voltages.update({node: float(value) for node, value in zip(free, values)})
        return voltages

    def _residual(self, free: List[str], values: np.ndarray) -> np.ndarray:
        voltages = self._assemble_voltages(free, values)
        residuals = self.circuit.residual_currents(voltages)
        return np.array([residuals[node] for node in free])

    def _jacobian(self, free: List[str], values: np.ndarray,
                  residual: np.ndarray) -> np.ndarray:
        size = len(free)
        jacobian = np.empty((size, size))
        for column in range(size):
            perturbed = values.copy()
            perturbed[column] += self.voltage_step
            jacobian[:, column] = (self._residual(free, perturbed) - residual) \
                / self.voltage_step
        return jacobian

    def _newton(self, free: List[str], start: np.ndarray) -> DCSolution:
        values = start.astype(float).copy()
        residual = self._residual(free, values)
        norm = float(np.max(np.abs(residual)))
        for iteration in range(1, self.max_iterations + 1):
            if norm <= self.tolerance:
                return DCSolution(
                    voltages=self._assemble_voltages(free, values),
                    iterations=iteration - 1,
                    residual_norm=norm,
                )
            jacobian = self._jacobian(free, values, residual)
            try:
                step = np.linalg.solve(jacobian, -residual)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(jacobian, -residual, rcond=None)[0]
            if not np.all(np.isfinite(step)):
                raise ConvergenceError("Newton step is not finite",
                                       iterations=iteration, residual=norm)
            # Damped update: halve the step until the residual stops growing.
            damping = 1.0
            for _ in range(30):
                candidate = values + damping * step
                candidate_residual = self._residual(free, candidate)
                candidate_norm = float(np.max(np.abs(candidate_residual)))
                if candidate_norm <= norm or candidate_norm <= self.tolerance:
                    break
                damping *= 0.5
            values = values + damping * step
            residual = self._residual(free, values)
            norm = float(np.max(np.abs(residual)))
        if norm <= self.tolerance * 10.0:
            # Accept near-converged points rather than failing a whole sweep.
            return DCSolution(voltages=self._assemble_voltages(free, values),
                              iterations=self.max_iterations, residual_norm=norm)
        raise ConvergenceError(
            f"Newton iteration did not converge (residual {norm:.3e} A)",
            iterations=self.max_iterations, residual=norm)


__all__ = ["DCSolver", "DCSolution"]
