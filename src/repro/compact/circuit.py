"""The compact-circuit container used by the SPICE-like solver.

A :class:`CompactCircuit` is a collection of continuous-voltage nodes, ideal
voltage sources and devices implementing the ``terminals`` /
``terminal_currents`` protocol (resistors, current sources, MOSFETs, SETs,
varactors, ...).  The ground node ``"gnd"`` always exists and is fixed at
0 V.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import CircuitError
from .elements import CapacitorDC, CurrentSource, Resistor
from .mosfet import MOSFET, MOSFETModel
from .set_model import SETDevice
from .varactor import JunctionVaractor, Varactor

#: Name of the ground node of every compact circuit.
GROUND = "gnd"


class CompactCircuit:
    """A circuit for the compact (continuous-voltage) solver.

    Examples
    --------
    The SET-MOS series stack at the heart of the paper's §3::

        circuit = CompactCircuit("setmos")
        circuit.add_voltage_source("VDD", "vdd", 1.0)
        circuit.add_voltage_source("VIN", "in", 0.2)
        circuit.add_mosfet("M1", drain="vdd", gate="bias", source="out",
                           model=MOSFETModel())
        circuit.add_voltage_source("VB", "bias", 0.6)
        circuit.add_set("X1", drain="out", gate="in", source="gnd",
                        model=AnalyticSETModel())
    """

    def __init__(self, name: str = "compact_circuit") -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(f"circuit name must be a non-empty string, got {name!r}")
        self.name = name
        self._fixed: Dict[str, float] = {GROUND: 0.0}
        self._source_names: Dict[str, str] = {}
        self._free_nodes: List[str] = []
        self._devices: Dict[str, object] = {}

    # ------------------------------------------------------------------ nodes

    def add_node(self, name: str) -> str:
        """Declare a free (unknown-voltage) node; returns its name."""
        self._check_node_name(name)
        self._free_nodes.append(name)
        return name

    def _check_node_name(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(f"node name must be a non-empty string, got {name!r}")
        if name in self._fixed or name in self._free_nodes:
            raise CircuitError(f"node {name!r} already exists")

    def _ensure_node(self, name: str) -> None:
        if name not in self._fixed and name not in self._free_nodes:
            self._free_nodes.append(name)

    @property
    def free_nodes(self) -> List[str]:
        """Nodes whose voltages are solved for."""
        return list(self._free_nodes)

    @property
    def fixed_nodes(self) -> Dict[str, float]:
        """Nodes with imposed voltages (ground and voltage-source nodes)."""
        return dict(self._fixed)

    def all_nodes(self) -> List[str]:
        """Every node name (fixed first)."""
        return list(self._fixed) + list(self._free_nodes)

    # ---------------------------------------------------------------- sources

    def add_voltage_source(self, name: str, node: str, voltage: float) -> None:
        """Fix ``node`` at ``voltage`` volt (creates the node if necessary)."""
        if name in self._source_names:
            raise CircuitError(f"voltage source {name!r} already exists")
        if node in self._free_nodes:
            self._free_nodes.remove(node)
        if node == GROUND and voltage != 0.0:
            raise CircuitError("cannot bias the ground node away from 0 V")
        self._fixed[node] = float(voltage)
        self._source_names[name] = node

    def set_source_voltage(self, name_or_node: str, voltage: float) -> None:
        """Update a voltage source (by element name or node name)."""
        node = self._source_names.get(name_or_node, name_or_node)
        if node not in self._fixed:
            raise CircuitError(f"{name_or_node!r} is not a voltage source or fixed node")
        if node == GROUND and voltage != 0.0:
            raise CircuitError("cannot bias the ground node away from 0 V")
        self._fixed[node] = float(voltage)

    def source_voltage(self, name_or_node: str) -> float:
        """Current value of a voltage source (by element name or node name)."""
        node = self._source_names.get(name_or_node, name_or_node)
        try:
            return self._fixed[node]
        except KeyError:
            raise CircuitError(f"{name_or_node!r} is not a voltage source or fixed node") \
                from None

    # ---------------------------------------------------------------- devices

    def _add_device(self, device) -> None:
        name = device.name
        if name in self._devices:
            raise CircuitError(f"device {name!r} already exists")
        for terminal in device.terminals:
            self._ensure_node(terminal)
        self._devices[name] = device

    def add_resistor(self, name: str, node_a: str, node_b: str,
                     resistance: float) -> Resistor:
        """Add an ideal resistor."""
        device = Resistor(name, node_a, node_b, float(resistance))
        self._add_device(device)
        return device

    def add_current_source(self, name: str, node_a: str, node_b: str,
                           current: float) -> CurrentSource:
        """Add an ideal current source (current flows a -> b through it)."""
        device = CurrentSource(name, node_a, node_b, float(current))
        self._add_device(device)
        return device

    def add_capacitor(self, name: str, node_a: str, node_b: str,
                      capacitance: float) -> CapacitorDC:
        """Add a capacitor (open at DC)."""
        device = CapacitorDC(name, node_a, node_b, float(capacitance))
        self._add_device(device)
        return device

    def add_mosfet(self, name: str, drain: str, gate: str, source: str,
                   model: MOSFETModel) -> MOSFET:
        """Add a MOSFET instance."""
        device = MOSFET(name, drain, gate, source, model)
        self._add_device(device)
        return device

    def add_set(self, name: str, drain: str, gate: str, source: str,
                model) -> SETDevice:
        """Add a single-electron transistor instance (analytic or exact model)."""
        device = SETDevice(name, drain, gate, source, model)
        self._add_device(device)
        return device

    def add_varactor(self, name: str, node_a: str, node_b: str,
                     model: JunctionVaractor) -> Varactor:
        """Add a varactor (open at DC, voltage-dependent capacitance)."""
        device = Varactor(name, node_a, node_b, model)
        self._add_device(device)
        return device

    def add_device(self, device) -> None:
        """Add any object implementing the device protocol."""
        if not hasattr(device, "terminals") or not hasattr(device, "terminal_currents"):
            raise CircuitError(
                "a compact device must expose 'terminals' and 'terminal_currents'"
            )
        self._add_device(device)

    def device(self, name: str):
        """Look up a device by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise CircuitError(
                f"unknown device {name!r}; known devices: {sorted(self._devices)}"
            ) from None

    def devices(self) -> List[object]:
        """All devices in insertion order."""
        return list(self._devices.values())

    def replace_current_source(self, name: str, current: float) -> None:
        """Change the value of an existing current source."""
        device = self.device(name)
        if not isinstance(device, CurrentSource):
            raise CircuitError(f"{name!r} is not a current source")
        self._devices[name] = CurrentSource(name, device.node_a, device.node_b,
                                            float(current))

    # ------------------------------------------------------------- inspection

    def residual_currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """Net current flowing out of every free node (KCL residuals)."""
        residuals = {node: 0.0 for node in self._free_nodes}
        for device in self._devices.values():
            currents = device.terminal_currents(voltages)
            for terminal, current in currents.items():
                if terminal in residuals:
                    residuals[terminal] += current
        return residuals

    def device_current(self, name: str, voltages: Mapping[str, float],
                       terminal: Optional[str] = None) -> float:
        """Current into a device from one terminal (default: first terminal)."""
        device = self.device(name)
        currents = device.terminal_currents(voltages)
        if terminal is None:
            terminal = device.terminals[0]
        if terminal not in currents:
            raise CircuitError(
                f"device {name!r} has no terminal {terminal!r}; "
                f"terminals: {device.terminals}"
            )
        return currents[terminal]

    def __len__(self) -> int:
        return len(self._devices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CompactCircuit({self.name!r}, free_nodes={len(self._free_nodes)}, "
                f"devices={len(self._devices)})")


__all__ = ["CompactCircuit", "GROUND"]
