"""Compact (SPICE-style) models of the single-electron transistor.

The paper's §4 describes two simulator families.  This module provides the
"SPICE with special SET models" side:

* :class:`AnalyticSETModel` — a closed-form two-state orthodox model in the
  spirit of the MIB (Mahapatra-Ionescu-Banerjee) and Wang-Porod analytic
  models: it keeps only the two charge states adjacent to the nearest
  degeneracy point and evaluates their sequential-tunnelling rates
  analytically.  It is fast, smooth and captures the periodic Id-Vg
  characteristic and the Coulomb blockade, but — exactly as the paper notes —
  it knows nothing about co-tunnelling or interacting SETs.
* :class:`MasterEquationSETModel` — the same terminal interface backed by the
  full master-equation solver (with a small operating-point cache), used when
  accuracy matters more than speed.
* :class:`SETDevice` — the circuit element wrapper that plugs either model
  into the compact Newton solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..constants import E_CHARGE
from ..core.rates import orthodox_rate, orthodox_rate_vec
from ..errors import CircuitError


@dataclass(frozen=True)
class AnalyticSETModel:
    """Analytic compact model of a metallic SET (three-charge-state window).

    The model evaluates the closed-form orthodox free-energy changes for the
    charge states ``n0 - 1``, ``n0`` and ``n0 + 1`` around the instantaneous
    operating point, solves the resulting three-state balance analytically and
    returns the sequential-tunnelling current.  This is the same approximation
    class as the MIB / Wang-Porod SPICE macro-models: fast and smooth, exact
    in the sequential low-charge regime, but blind to co-tunnelling and to
    interactions between SETs.

    Parameters
    ----------
    drain_capacitance, source_capacitance:
        Junction capacitances in farad.
    gate_capacitance:
        Gate capacitance in farad.
    drain_resistance, source_resistance:
        Junction tunnel resistances in ohm.
    background_charge:
        Island offset charge in coulomb.
    temperature:
        Operating temperature in kelvin.
    """

    drain_capacitance: float = 1e-18
    source_capacitance: float = 1e-18
    gate_capacitance: float = 2e-18
    drain_resistance: float = 1e6
    source_resistance: float = 1e6
    background_charge: float = 0.0
    temperature: float = 1.0

    def __post_init__(self) -> None:
        if min(self.drain_capacitance, self.source_capacitance,
               self.gate_capacitance) <= 0.0:
            raise CircuitError("capacitances must be positive")
        if min(self.drain_resistance, self.source_resistance) <= 0.0:
            raise CircuitError("resistances must be positive")
        if self.temperature < 0.0:
            raise CircuitError("temperature must be non-negative")

    @property
    def total_capacitance(self) -> float:
        """Total island capacitance in farad."""
        return self.drain_capacitance + self.source_capacitance + self.gate_capacitance

    @property
    def gate_period(self) -> float:
        """Coulomb-oscillation gate period ``e / C_g`` in volt."""
        return E_CHARGE / self.gate_capacitance

    # -------------------------------------------------------------- internals

    def _in_energies(self, n, drain_voltage, gate_voltage, source_voltage):
        """Free-energy cost of adding one electron to the island from each lead.

        Returns ``(dF_drain_in, dF_source_in)`` evaluated in state ``n`` (the
        textbook closed-form expressions).  The reverse (electron leaving the
        island from state ``n + 1``) has exactly the opposite sign.  Pure
        arithmetic: scalars and broadcastable arrays both work.
        """
        c_drain = self.drain_capacitance
        c_source = self.source_capacitance
        c_gate = self.gate_capacitance
        c_total = self.total_capacitance
        q0 = self.background_charge
        scale = E_CHARGE / c_total

        drain_in = scale * (0.5 * E_CHARGE + n * E_CHARGE - q0
                            + (c_source + c_gate) * drain_voltage
                            - c_source * source_voltage - c_gate * gate_voltage)
        source_in = scale * (0.5 * E_CHARGE + n * E_CHARGE - q0
                             + (c_drain + c_gate) * source_voltage
                             - c_drain * drain_voltage - c_gate * gate_voltage)
        return drain_in, source_in

    def _induced_charge(self, drain_voltage: float, gate_voltage: float,
                        source_voltage: float) -> float:
        """Total induced island charge in units of ``e``."""
        return (self.background_charge
                + self.gate_capacitance * gate_voltage
                + self.drain_capacitance * drain_voltage
                + self.source_capacitance * source_voltage) / E_CHARGE

    # -------------------------------------------------------------- interface

    def drain_current(self, drain_voltage, gate_voltage, source_voltage=0.0):
        """Drain-to-source current in ampere (sequential compact model).

        The current is evaluated with a three-charge-state window; to keep the
        characteristic continuous in every terminal voltage (a hard
        requirement for the Newton solver), the windows anchored at the two
        integer charge states bracketing the induced charge are blended
        linearly by its fractional part.

        Scalar arguments take the original closed-form path and return a
        ``float``; NumPy-array arguments broadcast through a vectorized
        replica of the same branch structure (element-wise identical to the
        scalar results) and return an array — this is what lets a dense
        stability map evaluate in one call instead of ``len(vd) * len(vg)``
        scalar calls.
        """
        if (np.ndim(drain_voltage) == 0 and np.ndim(gate_voltage) == 0
                and np.ndim(source_voltage) == 0):
            induced = self._induced_charge(drain_voltage, gate_voltage,
                                           source_voltage)
            base = math.floor(induced)
            fraction = induced - base
            lower = self._window_current(int(base), drain_voltage, gate_voltage,
                                         source_voltage)
            if fraction <= 1e-12:
                return lower
            upper = self._window_current(int(base) + 1, drain_voltage,
                                         gate_voltage, source_voltage)
            return (1.0 - fraction) * lower + fraction * upper
        return self._drain_current_array(drain_voltage, gate_voltage,
                                         source_voltage)

    def drain_current_map(self, drain_voltages, gate_voltages,
                          source_voltage: float = 0.0) -> np.ndarray:
        """Dense ``(drain, gate)`` current map in one broadcast evaluation.

        Parameters
        ----------
        drain_voltages, gate_voltages:
            The map axes, in volt.
        source_voltage:
            Fixed source potential, in volt.

        Returns
        -------
        numpy.ndarray
            Shape ``(len(drain_voltages), len(gate_voltages))`` — the layout
            :func:`repro.analysis.stability.compute_stability_diagram`
            consumes.
        """
        drain = np.asarray(drain_voltages, dtype=float).reshape(-1, 1)
        gate = np.asarray(gate_voltages, dtype=float).reshape(1, -1)
        return self._drain_current_array(drain, gate,
                                         np.asarray(source_voltage, dtype=float))

    def _drain_current_array(self, drain_voltage, gate_voltage,
                             source_voltage) -> np.ndarray:
        """Vectorized :meth:`drain_current` (same branches, array-valued)."""
        vd, vg, vs = np.broadcast_arrays(np.asarray(drain_voltage, dtype=float),
                                         np.asarray(gate_voltage, dtype=float),
                                         np.asarray(source_voltage, dtype=float))
        # _induced_charge is pure arithmetic and broadcasts over arrays.
        induced = self._induced_charge(vd, vg, vs)
        base = np.floor(induced)
        fraction = induced - base
        lower = self._window_current_array(base, vd, vg, vs)
        upper = self._window_current_array(base + 1.0, vd, vg, vs)
        blended = (1.0 - fraction) * lower + fraction * upper
        return np.where(fraction <= 1e-12, lower, blended)

    def _window_current_array(self, centre, vd, vg, vs) -> np.ndarray:
        """Vectorized :meth:`_window_current` over an array of window centres.

        ``_in_energies`` is pure arithmetic and broadcasts over arrays, so the
        scalar and array paths share the electrostatics verbatim.
        """
        up_drain, up_source, down_drain, down_source = {}, {}, {}, {}
        for offset in (-1, 0, 1):
            drain_in, source_in = self._in_energies(centre + offset, vd, vg, vs)
            up_drain[offset] = orthodox_rate_vec(drain_in, self.drain_resistance,
                                                 self.temperature)
            up_source[offset] = orthodox_rate_vec(source_in,
                                                  self.source_resistance,
                                                  self.temperature)
            drain_in_below, source_in_below = self._in_energies(
                centre + offset - 1.0, vd, vg, vs)
            down_drain[offset] = orthodox_rate_vec(-drain_in_below,
                                                   self.drain_resistance,
                                                   self.temperature)
            down_source[offset] = orthodox_rate_vec(-source_in_below,
                                                    self.source_resistance,
                                                    self.temperature)

        up_centre = up_drain[0] + up_source[0]
        down_upper = down_drain[1] + down_source[1]
        down_centre = down_drain[0] + down_source[0]
        up_lower = up_drain[-1] + up_source[-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            weight_upper = np.where(
                down_upper > 0.0, up_centre / down_upper,
                np.where(up_centre == 0.0, 0.0, np.inf))
            weight_lower = np.where(
                up_lower > 0.0, down_centre / up_lower,
                np.where(down_centre == 0.0, 0.0, np.inf))

            lower_infinite = np.isinf(weight_lower)
            upper_infinite = np.isinf(weight_upper)
            infinite_count = (lower_infinite.astype(float)
                              + upper_infinite.astype(float))
            any_infinite = infinite_count > 0.0
            # Same summation order as the scalar dict (centre, upper, lower).
            total = 1.0 + weight_upper + weight_lower
            divisor = np.where(any_infinite, 1.0, total)
            share = np.where(any_infinite, infinite_count, 1.0)
            probability_lower = np.where(any_infinite,
                                         lower_infinite / share,
                                         weight_lower / divisor)
            probability_centre = np.where(any_infinite, 0.0, 1.0 / divisor)
            probability_upper = np.where(any_infinite,
                                         upper_infinite / share,
                                         weight_upper / divisor)

        current = ((probability_centre * down_drain[0]
                    - probability_lower * up_drain[-1])
                   + (probability_upper * down_drain[1]
                      - probability_centre * up_drain[0]))
        dead = ~any_infinite & (total <= 0.0)
        return np.where(dead, 0.0, E_CHARGE * current)

    def _window_current(self, centre: int, drain_voltage: float, gate_voltage: float,
                        source_voltage: float) -> float:
        """Sequential current from the three-state window centred on ``centre``."""
        states = (centre - 1, centre, centre + 1)

        # Per-state rates: up = electron added (from drain / from source),
        # down = electron removed (to drain / to source).
        up_drain = {}
        up_source = {}
        down_drain = {}
        down_source = {}
        for n in states:
            drain_in, source_in = self._in_energies(n, drain_voltage, gate_voltage,
                                                    source_voltage)
            up_drain[n] = orthodox_rate(drain_in, self.drain_resistance,
                                        self.temperature)
            up_source[n] = orthodox_rate(source_in, self.source_resistance,
                                         self.temperature)
            drain_in_below, source_in_below = self._in_energies(
                n - 1, drain_voltage, gate_voltage, source_voltage)
            down_drain[n] = orthodox_rate(-drain_in_below, self.drain_resistance,
                                          self.temperature)
            down_source[n] = orthodox_rate(-source_in_below, self.source_resistance,
                                           self.temperature)

        # Birth-death chain over the three states: unnormalised weights by
        # successive flow-balance ratios, with absorbing corners handled
        # explicitly (weight collapses to the absorbing side).
        weights = {centre: 1.0}
        up_centre = up_drain[centre] + up_source[centre]
        down_upper = down_drain[centre + 1] + down_source[centre + 1]
        if down_upper > 0.0:
            weights[centre + 1] = up_centre / down_upper
        else:
            weights[centre + 1] = 0.0 if up_centre == 0.0 else math.inf
        down_centre = down_drain[centre] + down_source[centre]
        up_lower = up_drain[centre - 1] + up_source[centre - 1]
        if up_lower > 0.0:
            weights[centre - 1] = down_centre / up_lower
        else:
            weights[centre - 1] = 0.0 if down_centre == 0.0 else math.inf

        infinite = [n for n, weight in weights.items() if math.isinf(weight)]
        if infinite:
            probabilities = {n: (1.0 / len(infinite) if n in infinite else 0.0)
                             for n in states}
        else:
            total = sum(weights.values())
            if total <= 0.0:
                return 0.0
            probabilities = {n: weight / total for n, weight in weights.items()}

        # Electrons leaving to the drain carry conventional current into the
        # drain terminal (positive drain-to-source current).  Only the bonds
        # internal to the window are counted; transitions that would leave the
        # window are not balanced by any return path and would otherwise show
        # up as a spurious equilibrium current.
        current = 0.0
        for n in (centre - 1, centre):
            current += probabilities[n + 1] * down_drain[n + 1] \
                - probabilities[n] * up_drain[n]
        return E_CHARGE * current

    def conductance(self, drain_voltage: float, gate_voltage: float,
                    source_voltage: float = 0.0,
                    probe: float = 1e-6) -> float:
        """Numerical small-signal output conductance ``dI/dV_ds`` in siemens."""
        forward = self.drain_current(drain_voltage + probe, gate_voltage,
                                     source_voltage)
        backward = self.drain_current(drain_voltage - probe, gate_voltage,
                                      source_voltage)
        return (forward - backward) / (2.0 * probe)


class MasterEquationSETModel:
    """Master-equation-backed SET model with the compact-model interface.

    Slower but exact within sequential tunnelling; used by the simulator
    comparison experiment (E7) as the accuracy reference and by hybrid
    circuits when the two-state approximation is not good enough.

    Parameters
    ----------
    drain_capacitance, source_capacitance, gate_capacitance:
        Device capacitances in farad.
    drain_resistance, source_resistance:
        Tunnel resistances in ohm.
    background_charge:
        Island offset charge in coulomb.
    temperature:
        Operating temperature in kelvin.
    voltage_resolution:
        Terminal voltages are quantised to this resolution (volt) for the
        internal operating-point cache.
    """

    def __init__(self, drain_capacitance: float = 1e-18,
                 source_capacitance: float = 1e-18,
                 gate_capacitance: float = 2e-18,
                 drain_resistance: float = 1e6,
                 source_resistance: float = 1e6,
                 background_charge: float = 0.0,
                 temperature: float = 1.0,
                 voltage_resolution: float = 1e-7) -> None:
        if voltage_resolution <= 0.0:
            raise CircuitError("voltage resolution must be positive")
        self.drain_capacitance = drain_capacitance
        self.source_capacitance = source_capacitance
        self.gate_capacitance = gate_capacitance
        self.drain_resistance = drain_resistance
        self.source_resistance = source_resistance
        self.background_charge = background_charge
        self.temperature = temperature
        self.voltage_resolution = voltage_resolution
        self._cache: Dict[Tuple[int, int, int], float] = {}

    @property
    def total_capacitance(self) -> float:
        """Total island capacitance in farad."""
        return self.drain_capacitance + self.source_capacitance + self.gate_capacitance

    @property
    def gate_period(self) -> float:
        """Coulomb-oscillation gate period ``e / C_g`` in volt."""
        return E_CHARGE / self.gate_capacitance

    def drain_current(self, drain_voltage: float, gate_voltage: float,
                      source_voltage: float = 0.0) -> float:
        """Drain-to-source current in ampere from the full master equation."""
        key = (round(drain_voltage / self.voltage_resolution),
               round(gate_voltage / self.voltage_resolution),
               round(source_voltage / self.voltage_resolution))
        if key in self._cache:
            return self._cache[key]
        current = self._solve(*[value * self.voltage_resolution for value in key])
        self._cache[key] = current
        return current

    def _build_circuit(self, drain_voltage: float, gate_voltage: float,
                       source_voltage: float):
        from ..circuit.netlist import Circuit

        circuit = Circuit("set_compact")
        circuit.add_island("dot", offset_charge=self.background_charge)
        circuit.add_voltage_source("VD", "drain", drain_voltage)
        circuit.add_voltage_source("VS", "source", source_voltage)
        circuit.add_voltage_source("VG", "gate", gate_voltage)
        circuit.add_junction("J_drain", "drain", "dot", self.drain_capacitance,
                             self.drain_resistance)
        circuit.add_junction("J_source", "dot", "source", self.source_capacitance,
                             self.source_resistance)
        circuit.add_capacitor("C_gate", "gate", "dot", self.gate_capacitance)
        return circuit

    def _solve(self, drain_voltage: float, gate_voltage: float,
               source_voltage: float) -> float:
        from ..master.steadystate import MasterEquationSolver

        circuit = self._build_circuit(drain_voltage, gate_voltage,
                                      source_voltage)
        solver = MasterEquationSolver(circuit, temperature=self.temperature)
        # Conventional current from drain node into the island equals the
        # drain-to-source current of the device.
        return solver.current("J_drain")

    def drain_current_map(self, drain_voltages, gate_voltages,
                          source_voltage: float = 0.0) -> np.ndarray:
        """Batched ``(drain, gate)`` current map from the master equation.

        One circuit and one
        :class:`~repro.master.transitions.TransitionTable` serve the whole
        grid (per point only the rates are refreshed and one linear system is
        solved), so dense maps no longer pay a full solver construction per
        pixel.

        Parameters
        ----------
        drain_voltages, gate_voltages:
            The map axes, in volt.
        source_voltage:
            Fixed source potential, in volt.

        Returns
        -------
        numpy.ndarray
            Shape ``(len(drain_voltages), len(gate_voltages))``.
        """
        from ..master.steadystate import MasterEquationSolver

        circuit = self._build_circuit(0.0, 0.0, float(source_voltage))
        solver = MasterEquationSolver(circuit, temperature=self.temperature)
        _, _, currents = solver.sweep_gate_drain(
            "VG", "VD", np.asarray(gate_voltages, dtype=float),
            np.asarray(drain_voltages, dtype=float), "J_drain")
        return currents

    def clear_cache(self) -> None:
        """Drop all cached operating points (e.g. after mutating parameters)."""
        self._cache.clear()


class TunableSETModel:
    """A mutable wrapper around :class:`AnalyticSETModel`.

    Quasi-static transient drivers (most prominently the single-electron
    random-number generator) need to change the island's effective background
    charge — and occasionally the gate capacitance — *between* time steps
    while the device stays wired into the same compact circuit.  This wrapper
    exposes those knobs as writable attributes and rebuilds its internal
    analytic model lazily.
    """

    def __init__(self, **parameters) -> None:
        self._parameters = dict(AnalyticSETModel().__dict__)
        self._parameters.update(parameters)
        self._model = AnalyticSETModel(**self._parameters)

    def __getattr__(self, name: str):
        parameters = object.__getattribute__(self, "_parameters")
        if name in parameters:
            return parameters[name]
        raise AttributeError(name)

    def set_parameter(self, name: str, value: float) -> None:
        """Change one model parameter (e.g. ``background_charge``)."""
        if name not in self._parameters:
            raise CircuitError(
                f"unknown SET parameter {name!r}; known parameters: "
                f"{sorted(self._parameters)}"
            )
        if self._parameters[name] != value:
            self._parameters[name] = value
            self._model = AnalyticSETModel(**self._parameters)

    @property
    def background_charge(self) -> float:
        """Current effective background charge in coulomb."""
        return self._parameters["background_charge"]

    @background_charge.setter
    def background_charge(self, value: float) -> None:
        self.set_parameter("background_charge", float(value))

    @property
    def gate_capacitance(self) -> float:
        """Current gate capacitance in farad."""
        return self._parameters["gate_capacitance"]

    @gate_capacitance.setter
    def gate_capacitance(self, value: float) -> None:
        self.set_parameter("gate_capacitance", float(value))

    @property
    def total_capacitance(self) -> float:
        """Total island capacitance in farad."""
        return self._model.total_capacitance

    @property
    def gate_period(self) -> float:
        """Coulomb-oscillation gate period in volt."""
        return self._model.gate_period

    def drain_current(self, drain_voltage, gate_voltage, source_voltage=0.0):
        """Drain current of the underlying analytic model (scalar or array)."""
        return self._model.drain_current(drain_voltage, gate_voltage, source_voltage)

    def drain_current_map(self, drain_voltages, gate_voltages,
                          source_voltage: float = 0.0) -> np.ndarray:
        """Dense ``(drain, gate)`` current map of the underlying model.

        Parameters
        ----------
        drain_voltages, gate_voltages:
            The map axes, in volt.
        source_voltage:
            Fixed source potential, in volt.

        Returns
        -------
        numpy.ndarray
            Shape ``(len(drain_voltages), len(gate_voltages))``.
        """
        return self._model.drain_current_map(drain_voltages, gate_voltages,
                                             source_voltage)


@dataclass(frozen=True)
class SETDevice:
    """A three-terminal SET instance wired into a compact circuit.

    ``model`` may be an :class:`AnalyticSETModel` or a
    :class:`MasterEquationSETModel`; anything with a ``drain_current(vd, vg,
    vs)`` method works.
    """

    name: str
    drain: str
    gate: str
    source: str
    model: object

    @property
    def terminals(self) -> Tuple[str, ...]:
        """Connected nodes (the gate is purely capacitive: no DC current)."""
        return (self.drain, self.gate, self.source)

    def terminal_currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """Terminal currents computed by the attached SET model."""
        current = self.model.drain_current(  # type: ignore[attr-defined]
            voltages[self.drain], voltages[self.gate], voltages[self.source])
        return {self.drain: current, self.gate: 0.0, self.source: -current}


__all__ = ["AnalyticSETModel", "MasterEquationSETModel", "SETDevice", "TunableSETModel"]
