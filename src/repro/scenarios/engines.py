"""Engine selection and session binding for scenario runs.

The execution machinery itself lives in :mod:`repro.engines` — the
:class:`~repro.engines.base.Engine` protocol, the bound
:class:`~repro.engines.base.Session` objects, and the registry.  This module
is the thin scenario-side glue:

* :func:`select_engine` resolves ``engine="auto"`` for a spec by
  *capability introspection* over the registry (stochasticity, ensemble
  support, exactness class, cost model) — no engine names are hard-coded in
  the selection rules;
* :class:`EngineContext` hands every scenario compute function a
  pre-resolved engine plus :meth:`EngineContext.session` /
  :meth:`EngineContext.sweep` conveniences that fold the spec's seed and
  budget into :meth:`~repro.engines.base.Engine.bind`.

The pre-protocol entry points (:meth:`EngineContext.id_vg`,
:func:`analytic_model_for`) keep working as thin deprecation shims; see the
migration guide in ``docs/engines.md``.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Tuple

import numpy as np

from ..devices.set_transistor import SETTransistor
from ..engines import (
    EXACTNESS_APPROXIMATE,
    Session,
    SweepAxes,
    SweepResult,
    get_engine,
    list_engines,
)
from ..errors import ValidationError
from .spec import ScenarioSpec

#: Observable name fragments that mark a scenario as intrinsically
#: stochastic: it needs trajectories / error bars, so only engines whose
#: capabilities declare ``stochastic`` can produce it.
_STOCHASTIC_MARKERS = ("stderr", "noise", "bits", "entropy", "telegraph",
                      "trajectory")

#: Above this many sweep points the cheapest approximate engine is preferred
#: for ``auto`` scenarios that tolerate the sequential-tunnelling
#: approximation (compact sweeps cost microseconds per point versus
#: milliseconds for a master-equation solve — the ~100x gap measured in
#: BENCH_master.json).
_ANALYTIC_POINT_CUTOFF = 4096


def analytic_model_for(device: SETTransistor, temperature: float,
                       background_charge: Optional[float] = None):
    """Deprecated alias of :func:`repro.engines.analytic_model_for`.

    .. deprecated::
        Import :func:`repro.engines.analytic_model_for` (or bind the
        ``analytic`` engine via :func:`repro.engines.get_engine`) instead.

    Parameters
    ----------
    device:
        The SET whose parameters to mirror.
    temperature:
        Model temperature in kelvin.
    background_charge:
        Optional override of the device's offset charge, in coulomb.

    Returns
    -------
    repro.compact.set_model.AnalyticSETModel
        The equivalent analytic model.
    """
    from ..engines.adapters import analytic_model_for as _impl

    warnings.warn(
        "repro.scenarios.engines.analytic_model_for is deprecated; use "
        "repro.engines.analytic_model_for (or get_engine('analytic').bind)",
        DeprecationWarning, stacklevel=2)
    return _impl(device, temperature, background_charge=background_charge)


def _cheapest(engines):
    """The engine with the lowest declared per-point cost.

    Ties between capability-equivalent candidates (e.g. a third-party
    backend alongside a built-in) are resolved by the cost model, not by
    registry order, so registering an extra engine never silently hijacks
    ``auto`` selection unless it also declares itself cheaper.
    """
    return min(engines,
               key=lambda engine: engine.capabilities().cost.per_point_s)


def _selectable_engines():
    """Registered engines whose capabilities declare them ``available``.

    Engines gated on optional dependencies (e.g. the compiled-kernel
    engines without a native backend) register unconditionally so that
    explicit requests give a clear error, but ``auto`` selection only
    ever considers engines that can actually deliver their declared cost
    model.
    """
    return [engine for engine in list_engines()
            if engine.capabilities().available]


def _stochastic_engine_name(replicas: int) -> str:
    """The stochastic engine matching a replica budget, by capability.

    Replica budgets >= 2 want an ensemble-capable stochastic engine
    (replica spread beats block averaging at equal cost); otherwise a
    plain single-trajectory one.
    """
    stochastic = [engine for engine in _selectable_engines()
                  if engine.capabilities().stochastic]
    if not stochastic:
        raise ValidationError("no stochastic engine registered")
    want_ensemble = replicas >= 2
    matching = [engine for engine in stochastic
                if engine.capabilities().supports_ensemble == want_ensemble]
    return _cheapest(matching or stochastic).name


def _cheapest_approximate_name() -> Optional[str]:
    """The cheapest-per-point approximate engine, or ``None`` if none exists."""
    approximate = [engine for engine in _selectable_engines()
                   if engine.capabilities().exactness == EXACTNESS_APPROXIMATE]
    if not approximate:
        return None
    return _cheapest(approximate).name


def _exact_deterministic_name() -> str:
    """The exact deterministic engine (the heuristic's default answer)."""
    candidates = [engine for engine in _selectable_engines()
                  if not engine.capabilities().stochastic
                  and engine.capabilities().exactness != EXACTNESS_APPROXIMATE]
    if not candidates:
        raise ValidationError("no exact deterministic engine registered")
    return _cheapest(candidates).name


def select_engine(spec: ScenarioSpec) -> str:
    """Resolve a spec's engine request to a concrete engine name.

    The heuristic works purely on registry capability introspection
    (:meth:`repro.engines.base.Engine.capabilities`), in priority order:

    1. an explicit engine request wins;
    2. stochastic observables (``*stderr*``, ``*noise*``, ``*bits*``, ...)
       need trajectories: the ensemble-capable stochastic engine when the
       budget carries >= 2 replicas (replica spread beats block averaging
       at equal cost), otherwise the single-trajectory one — always the
       cheapest *available* candidate, so the compiled-kernel engines are
       adopted automatically exactly when their backend loaded;
    3. very large sweeps (> 4096 points) that a scenario marked as
       approximation-tolerant (``params["fidelity"] == "fast"``) go to the
       cheapest approximate engine;
    4. everything else gets the exact deterministic engine — exact
       sequential tunnelling, and its sparse structure-reusing path keeps
       even 10^4-state windows routine.

    Parameters
    ----------
    spec:
        The scenario spec to resolve.

    Returns
    -------
    str
        A concrete registered engine name (any entry of
        :func:`repro.engines.registry.engine_names` whose capabilities
        declare it available).
    """
    if spec.engine != "auto":
        return spec.engine
    observed = " ".join(spec.observables).lower()
    if any(marker in observed for marker in _STOCHASTIC_MARKERS):
        return _stochastic_engine_name(spec.budget.replicas)
    total_points = 1
    for axis in spec.sweeps:
        total_points *= (len(axis.values) if axis.values is not None
                         else max(axis.points, 1))
    if (spec.params.get("fidelity") == "fast"
            and total_points > _ANALYTIC_POINT_CUTOFF):
        approximate = _cheapest_approximate_name()
        if approximate is not None:
            return approximate
    return _exact_deterministic_name()


class EngineContext:
    """Execution context handed to every scenario compute function.

    Parameters
    ----------
    spec:
        The (engine-resolved or ``auto``) spec being run.
    log:
        Progress callback (the runner wires this to the CLI logger).
    """

    def __init__(self, spec: ScenarioSpec, log=None) -> None:
        self.spec = spec
        self.engine = select_engine(spec)
        if self.engine == "auto":
            raise ValidationError(f"unresolvable engine {self.engine!r}")
        get_engine(self.engine)   # unknown names fail here, not mid-compute
        self._log = log

    def log(self, message: str) -> None:
        """Emit one progress line through the runner's logger."""
        if self._log is not None:
            self._log(message)

    # ------------------------------------------------------------- sessions

    def transistor(self, **overrides) -> SETTransistor:
        """Build the spec's SET device (``spec.device`` plus overrides)."""
        parameters = dict(self.spec.device)
        parameters.update(overrides)
        return SETTransistor(**parameters)

    def session(self, device: Optional[SETTransistor] = None, *,
                temperature: Optional[float] = None,
                background_charge: Optional[float] = None) -> Session:
        """Bind the selected engine to a device under the spec's conditions.

        The spec's seed and budget (event counts, replicas) are folded into
        :meth:`~repro.engines.base.Engine.bind`, so every scenario gets the
        same reproducible binding regardless of which engine was resolved.

        Parameters
        ----------
        device:
            The SET to bind (default: :meth:`transistor`).
        temperature:
            Override of ``spec.temperature``, in kelvin.
        background_charge:
            Optional island offset charge in coulomb.

        Returns
        -------
        repro.engines.base.Session
            The bound, structure-reusing session.
        """
        budget = self.spec.budget
        return get_engine(self.engine).bind(
            device if device is not None else self.transistor(),
            temperature=(self.spec.temperature if temperature is None
                         else float(temperature)),
            seed=self.spec.seed,
            background_charge=background_charge,
            max_events=budget.max_events,
            warmup_events=budget.warmup_events,
            replicas=budget.replicas)

    def sweep(self, device: SETTransistor, gate_voltages: Sequence[float],
              drain_voltage: float, *,
              temperature: Optional[float] = None,
              background_charge: Optional[float] = None) -> SweepResult:
        """Gate sweep of the drain current through the selected engine.

        Binds a fresh session (see :meth:`session`) and runs
        :meth:`~repro.engines.base.Session.sweep` with the spec budget's
        worker fan-out — every engine stays on its fast path by
        construction.

        Parameters
        ----------
        device:
            The SET to sweep.
        gate_voltages:
            Gate bias values, in volt.
        drain_voltage:
            Fixed drain bias, in volt.
        temperature:
            Override of ``spec.temperature``.
        background_charge:
            Optional island offset charge in coulomb.

        Returns
        -------
        repro.engines.base.SweepResult
            Currents (and, for stochastic engines, standard errors) over
            the gate axis.
        """
        bound = self.session(device, temperature=temperature,
                             background_charge=background_charge)
        axes = SweepAxes(gate_voltages, drain_voltage)
        return bound.sweep(axes, workers=self.spec.budget.workers)

    # ------------------------------------------------------ deprecated shims

    def id_vg(self, device: SETTransistor, gate_voltages: Sequence[float],
              drain_voltage: float,
              temperature: Optional[float] = None,
              background_charge: Optional[float] = None
              ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Deprecated tuple-returning alias of :meth:`sweep`.

        .. deprecated::
            Call :meth:`sweep` (or bind a session directly) and use the
            returned :class:`~repro.engines.base.SweepResult`.

        Parameters
        ----------
        device:
            The SET to sweep.
        gate_voltages:
            Gate bias values, in volt.
        drain_voltage:
            Fixed drain bias, in volt.
        temperature:
            Override of ``spec.temperature``.
        background_charge:
            Optional island offset charge in coulomb.

        Returns
        -------
        (gates, currents, stderrs):
            Swept voltages, drain currents in ampere, and the per-point
            standard errors (``None`` for the deterministic engines).
        """
        warnings.warn(
            "EngineContext.id_vg is deprecated; use EngineContext.sweep "
            "(which returns a repro.engines.SweepResult)",
            DeprecationWarning, stacklevel=2)
        return self.sweep(device, gate_voltages, drain_voltage,
                          temperature=temperature,
                          background_charge=background_charge).astuple()


__all__ = ["EngineContext", "analytic_model_for", "select_engine"]
