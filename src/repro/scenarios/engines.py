"""Engine selection and cross-engine dispatch for scenario runs.

This is the first layer that sees all four engines at once.  It owns two
things:

* :func:`select_engine` — the documented heuristic that resolves
  ``engine="auto"`` for a spec (see ``docs/engines.md`` for the crossover
  numbers behind the rules);
* :class:`EngineContext` — the execution context handed to every scenario
  compute function.  Its :meth:`EngineContext.id_vg` runs a gate sweep
  through whichever engine was selected, always on that engine's fast path:
  structure-reusing sweeps for the master equation, warm-started
  event-table-carrying sweeps for Monte Carlo, batched replicas for the
  ensemble engine, and one broadcast evaluation for the analytic model.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..devices.set_transistor import (
    DRAIN_JUNCTION,
    GATE_SOURCE,
    SETTransistor,
)
from ..errors import ValidationError
from .spec import ENGINES, ScenarioSpec

#: Observable name fragments that mark a scenario as intrinsically
#: stochastic: it needs trajectories / error bars, so only the Monte-Carlo
#: family can produce it.
_STOCHASTIC_MARKERS = ("stderr", "noise", "bits", "entropy", "telegraph",
                      "trajectory")

#: Above this many sweep points the smooth analytic model is preferred for
#: ``auto`` scenarios that tolerate the sequential-tunnelling approximation
#: (compact sweeps cost microseconds per point versus milliseconds for a
#: master-equation solve — the ~100x gap measured in BENCH_master.json).
_ANALYTIC_POINT_CUTOFF = 4096


def analytic_model_for(device: SETTransistor, temperature: float,
                       background_charge: Optional[float] = None):
    """The compact-model twin of a :class:`SETTransistor`.

    One place owns the parameter mapping (junction/gate capacitances,
    resistances, offset charge), so the ``analytic`` engine path and
    scenarios that build compact models directly cannot drift apart.

    Parameters
    ----------
    device:
        The SET whose parameters to mirror.
    temperature:
        Model temperature in kelvin.
    background_charge:
        Optional override of the device's offset charge, in coulomb.

    Returns
    -------
    repro.compact.set_model.AnalyticSETModel
        The equivalent analytic model.
    """
    from ..compact.set_model import AnalyticSETModel

    return AnalyticSETModel(
        drain_capacitance=device.c_drain,
        source_capacitance=device.c_source,
        gate_capacitance=device.gate_capacitance,
        drain_resistance=device.r_drain,
        source_resistance=device.r_source,
        background_charge=(device.background_charge
                           if background_charge is None
                           else background_charge),
        temperature=float(temperature))


def select_engine(spec: ScenarioSpec) -> str:
    """Resolve a spec's engine request to a concrete engine name.

    The heuristic, in priority order:

    1. an explicit engine request wins;
    2. stochastic observables (``*stderr*``, ``*noise*``, ``*bits*``, ...)
       need trajectories: ``ensemble`` when the budget carries >= 2
       replicas (replica spread beats block averaging at equal cost),
       otherwise ``montecarlo``;
    3. very large sweeps (> 4096 points) that a scenario marked as
       approximation-tolerant (``params["fidelity"] == "fast"``) go to the
       ``analytic`` compact model;
    4. everything else gets the ``master`` equation — exact sequential
       tunnelling, and its sparse structure-reusing path keeps even
       10^4-state windows routine.

    Parameters
    ----------
    spec:
        The scenario spec to resolve.

    Returns
    -------
    str
        One of ``"montecarlo"``, ``"ensemble"``, ``"master"``,
        ``"analytic"``.
    """
    if spec.engine != "auto":
        return spec.engine
    observed = " ".join(spec.observables).lower()
    if any(marker in observed for marker in _STOCHASTIC_MARKERS):
        return "ensemble" if spec.budget.replicas >= 2 else "montecarlo"
    total_points = 1
    for axis in spec.sweeps:
        total_points *= (len(axis.values) if axis.values is not None
                         else max(axis.points, 1))
    if (spec.params.get("fidelity") == "fast"
            and total_points > _ANALYTIC_POINT_CUTOFF):
        return "analytic"
    return "master"


class EngineContext:
    """Execution context handed to every scenario compute function.

    Parameters
    ----------
    spec:
        The (engine-resolved or ``auto``) spec being run.
    log:
        Progress callback (the runner wires this to the CLI logger).
    """

    def __init__(self, spec: ScenarioSpec, log=None) -> None:
        self.spec = spec
        self.engine = select_engine(spec)
        if self.engine not in ENGINES or self.engine == "auto":
            raise ValidationError(f"unresolvable engine {self.engine!r}")
        self._log = log

    def log(self, message: str) -> None:
        """Emit one progress line through the runner's logger."""
        if self._log is not None:
            self._log(message)

    # ------------------------------------------------------------- dispatch

    def transistor(self, **overrides) -> SETTransistor:
        """Build the spec's SET device (``spec.device`` plus overrides)."""
        parameters = dict(self.spec.device)
        parameters.update(overrides)
        return SETTransistor(**parameters)

    def id_vg(self, device: SETTransistor, gate_voltages: Sequence[float],
              drain_voltage: float,
              temperature: Optional[float] = None,
              background_charge: Optional[float] = None
              ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Gate sweep of the drain current through the selected engine.

        Every engine runs on its fast path: the analytic model evaluates the
        whole sweep in one broadcast call, the master equation reuses its
        transition-table structure across points, and the Monte-Carlo paths
        carry a warm simulation state (and, for ``ensemble``, a batch of
        replicas) from one bias point to the next.  Worker fan-out follows
        ``spec.budget.workers``.

        Parameters
        ----------
        device:
            The SET to sweep.
        gate_voltages:
            Gate bias values, in volt.
        drain_voltage:
            Fixed drain bias, in volt.
        temperature:
            Override of ``spec.temperature``.
        background_charge:
            Optional island offset charge in coulomb.

        Returns
        -------
        (gates, currents, stderrs):
            Swept voltages, drain currents in ampere, and the per-point
            standard errors (``None`` for the deterministic engines).
        """
        temperature = self.spec.temperature if temperature is None \
            else float(temperature)
        gates = np.asarray(gate_voltages, dtype=float)
        budget = self.spec.budget
        if self.engine == "analytic":
            model = analytic_model_for(device, temperature,
                                       background_charge=background_charge)
            currents = model.drain_current_map([drain_voltage], gates)[0]
            return gates, np.asarray(currents, dtype=float), None
        if self.engine == "master":
            from ..master.steadystate import MasterEquationSolver

            circuit = device.build_circuit(
                drain_voltage=drain_voltage,
                gate_voltage=float(gates[0]),
                background_charge=background_charge)
            solver = MasterEquationSolver(circuit, temperature=temperature)
            _, currents = solver.sweep_source(GATE_SOURCE, gates,
                                              DRAIN_JUNCTION,
                                              workers=budget.workers)
            return gates, currents, None
        # Monte-Carlo family (single trajectory or batched replicas).
        from ..montecarlo.simulator import MonteCarloSimulator

        circuit = device.build_circuit(drain_voltage=drain_voltage,
                                       gate_voltage=float(gates[0]),
                                       background_charge=background_charge)
        simulator = MonteCarloSimulator(circuit, temperature=temperature,
                                        seed=self.spec.seed)
        replicas = None
        if self.engine == "ensemble":
            replicas = max(2, budget.replicas)
        _, currents, stderrs = simulator.sweep_source(
            GATE_SOURCE, gates, DRAIN_JUNCTION,
            max_events=budget.max_events,
            warmup_events=budget.warmup_events,
            warm_start=True, workers=budget.workers, ensemble=replicas)
        return gates, currents, stderrs


__all__ = ["EngineContext", "analytic_model_for", "select_engine"]
