"""The canonical paper scenarios (E1-E10), registered declaratively.

Each scenario bundles the workload of one `benchmarks/bench_e0*` experiment:
the spec carries the device parameters, engine choice, sweep axes,
observables, seed and budget; the compute function interprets the spec inside
an :class:`~repro.scenarios.engines.EngineContext` and produces the metrics,
tables and sweep records that the benchmarks assert on and the examples
print.  ``docs/scenarios.md`` documents every entry.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from ..constants import E_CHARGE
from ..io.results import SweepRecord
from .engines import EngineContext
from .registry import Scenario, register_scenario
from .result import ScenarioResult
from .spec import Budget, ScenarioSpec, SweepAxis

#: Parameters of the reference SET used by most scenarios (1 aF junctions,
#: 2 aF gate, 1 Mohm junctions — the `standard_transistor` of old).
STANDARD_DEVICE: Dict[str, float] = {
    "junction_capacitance": 1e-18,
    "gate_capacitance": 2e-18,
    "junction_resistance": 1e6,
}

#: Coulomb-oscillation gate period e/Cg of the reference SET, in volt.
STANDARD_GATE_PERIOD = E_CHARGE / STANDARD_DEVICE["gate_capacitance"]


def _new_result(spec: ScenarioSpec, context: EngineContext) -> ScenarioResult:
    """A fresh result shell for ``spec`` run under ``context``."""
    return ScenarioResult(name=spec.name, engine=context.engine)


# --------------------------------------------------------------------- E1

def _compute_coulomb_oscillations(spec: ScenarioSpec,
                                  context: EngineContext) -> ScenarioResult:
    """Periodic Id-Vg; a background charge shifts the phase only."""
    from ..analysis import analyze_oscillations, phase_shift_between

    device = context.transistor()
    gates = spec.axis("VG").grid()
    drain_voltage = float(spec.params["drain_voltage"])
    offsets = [float(f) for f in spec.params["offsets_in_e"]]

    result = _new_result(spec, context)
    result.metrics["gate_period_theory_V"] = device.gate_period
    sweeps: Dict[float, np.ndarray] = {}
    for fraction in offsets:
        swept = context.sweep(device, gates, drain_voltage,
                              background_charge=fraction * E_CHARGE)
        sweeps[fraction] = swept.currents
        result.records.append(SweepRecord(
            name=f"id_vg_q{fraction:g}", sweep_label="V_gate [V]",
            sweep_values=gates, traces={"I_drain [A]": swept.currents},
            metadata={"q0_e": f"{fraction:g}", "engine": context.engine}))

    rows = []
    for fraction, currents in sweeps.items():
        analysis = analyze_oscillations(gates, currents)
        result.metrics[f"period_V_q{fraction:g}"] = analysis.period
        result.metrics[f"amplitude_A_q{fraction:g}"] = analysis.amplitude
        result.metrics[f"phase_periods_q{fraction:g}"] = \
            analysis.phase_in_periods()
        rows.append([f"{fraction:.2f} e", analysis.period * 1e3,
                     analysis.amplitude * 1e12, analysis.phase_in_periods()])
    result.add_table(
        ["q0", "period [mV]", "amplitude [pA]", "phase [periods]"], rows,
        title=f"Coulomb oscillations (T = {spec.temperature} K, "
              f"Vd = {drain_voltage * 1e3:g} mV, engine = {context.engine})")

    reference = offsets[0]
    for fraction in offsets:
        if fraction == reference:
            continue
        shift = phase_shift_between(gates, sweeps[reference], sweeps[fraction])
        expected = 2.0 * np.pi * fraction
        mismatch = min(
            abs((shift - expected + np.pi) % (2.0 * np.pi) - np.pi),
            abs((shift + expected + np.pi) % (2.0 * np.pi) - np.pi),
        )
        result.metrics[f"phase_mismatch_rad_q{fraction:g}"] = mismatch
    result.notes.append(
        f"theoretical period e/Cg = {device.gate_period * 1e3:.2f} mV")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="coulomb_oscillations",
        engine="auto",
        temperature=1.0,
        device=dict(STANDARD_DEVICE),
        sweeps=(SweepAxis("VG", start=0.0, stop=3.0 * STANDARD_GATE_PERIOD,
                          points=120, endpoint=False),),
        observables=("period_V", "amplitude_A", "phase_periods",
                     "phase_mismatch_rad"),
        seed=1,
        params={"drain_voltage": 2e-3,
                "offsets_in_e": [0.0, 0.13, 0.25, 0.5]},
    ),
    compute=_compute_coulomb_oscillations,
    supported_engines=("auto", "analytic", "master", "montecarlo",
                       "ensemble"),
    title="Coulomb oscillations: Id-Vg period = e/Cg",
    claim="The Id-Vg characteristic is periodic with period e/Cg; a random "
          "background charge shifts the phase only (paper S2/S3).",
    expected=("one Id-Vg sweep record per background charge",
              "period_V_q* equal to e/Cg within a few percent",
              "amplitude_A_q* invariant under the background charge",
              "phase_mismatch_rad_q* below ~0.35 rad"),
))


# --------------------------------------------------------------------- E2

def _compute_background_charge_logic(spec: ScenarioSpec,
                                     context: EngineContext) -> ScenarioResult:
    """Direct-coded SET logic fails under background charges; AM/FM survives."""
    from ..devices import AMFMSET
    from ..logic import (
        AMCodedSETLogic,
        DirectCodedSETLogic,
        FMCodedSETLogic,
        bit_error_rate,
    )

    transistor = context.transistor()
    amfm_params = dict(spec.params["amfm_device"])
    amfm = AMFMSET(**amfm_params)
    direct = DirectCodedSETLogic(transistor,
                                 temperature=float(spec.params["direct_temperature"]))
    fm = FMCodedSETLogic(amfm, drain_voltage=float(spec.params["fm_drain_voltage"]),
                         temperature=spec.temperature, periods=3.0,
                         points_per_period=16)
    am = AMCodedSETLogic(amfm, drain_voltage=float(spec.params["am_drain_voltage"]),
                         temperature=spec.temperature, periods=3.0,
                         points_per_period=16)
    amplitude = float(spec.params["offset_amplitude_e"])
    runs = (
        ("direct", direct, int(spec.params["direct_trials"])),
        ("am", am, int(spec.params["modulated_trials"])),
        ("fm", fm, int(spec.params["modulated_trials"])),
    )
    result = _new_result(spec, context)
    rows = []
    for label, logic, trials in runs:
        rate = bit_error_rate(logic, trials=trials, amplitude=amplitude,
                              seed=spec.seed)
        result.metrics[f"error_rate_{label}"] = rate.error_rate
        result.metrics[f"errors_{label}"] = rate.errors
        result.metrics[f"decision_periods_{label}"] = rate.decision_periods
        rows.append([rate.encoding, rate.trials, rate.errors,
                     f"{rate.error_rate:.2f}", rate.decision_periods])
    result.add_table(
        ["coding", "trials", "errors", "bit error rate",
         "periods per decision"], rows,
        title="Bit-error rates under random background charges")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="background_charge_logic",
        engine="master",
        temperature=1.0,
        device=dict(STANDARD_DEVICE),
        observables=("error_rate_direct", "error_rate_am", "error_rate_fm",
                     "decision_periods_direct", "decision_periods_am",
                     "decision_periods_fm"),
        seed=11,
        params={
            "amfm_device": {"junction_capacitance": 1e-18,
                            "junction_resistance": 1e6,
                            "gate_capacitance_low": 1.5e-18,
                            "gate_capacitance_high": 3e-18},
            "direct_temperature": 0.5,
            "fm_drain_voltage": 2e-3,
            "am_drain_voltage": 2e-2,
            "direct_trials": 30,
            "modulated_trials": 12,
            "offset_amplitude_e": 0.5,
        },
    ),
    compute=_compute_background_charge_logic,
    title="Background-charge logic: direct coding breaks, AM/FM survives",
    claim="A trapped charge can flip a directly coded state; coding into the "
          "period or amplitude of the Id-Vg characteristic is background-"
          "charge independent, at the price of being slower (paper S2).",
    expected=("error_rate_direct well above zero",
              "error_rate_am and error_rate_fm exactly zero",
              "decision_periods_am/fm of several Id-Vg periods"),
))


# --------------------------------------------------------------------- E3

def _compute_gain_vs_temperature(spec: ScenarioSpec,
                                 context: EngineContext) -> ScenarioResult:
    """Voltage gain = Cg/Cj; gain > 1 costs operating temperature."""
    from ..devices import SETInverter
    from ..logic import characterize_inverter, gain_temperature_tradeoff

    junction_capacitance = float(spec.device["junction_capacitance"])
    gains = [float(g) for g in spec.params["gains"]]
    tradeoff = gain_temperature_tradeoff(junction_capacitance, gains=gains)

    result = _new_result(spec, context)
    rows = []
    for row in tradeoff:
        result.metrics[f"tmax_K_gain{row.gain:g}"] = \
            row.max_operating_temperature
        result.metrics[f"c_sigma_F_gain{row.gain:g}"] = row.total_capacitance
        rows.append([row.gain, row.total_capacitance * 1e18,
                     row.charging_energy / E_CHARGE * 1e3,
                     row.max_operating_temperature])
    result.add_table(
        ["design gain Cg/Cj", "C_sigma [aF]", "E_C [meV]", "T_max [K]"], rows,
        title="Analytic trade-off (single SET island, 40 kT criterion)")

    measured_rows = []
    for gain in (float(g) for g in spec.params["measured_gains"]):
        inverter = SETInverter(
            junction_capacitance=junction_capacitance,
            gate_capacitance=gain * junction_capacitance,
            junction_resistance=float(spec.device["junction_resistance"]))
        period = E_CHARGE / inverter.gate_capacitance
        inputs = np.linspace(0.0, 0.5 * period,
                             int(spec.params["transfer_points"]))
        vin, vout = inverter.transfer_curve(inputs,
                                            temperature=spec.temperature)
        metrics = characterize_inverter(vin, vout)
        result.metrics[f"peak_gain_design{gain:g}"] = metrics.peak_gain
        result.metrics[f"swing_V_design{gain:g}"] = metrics.swing
        result.records.append(SweepRecord(
            name=f"inverter_transfer_gain{gain:g}", sweep_label="V_in [V]",
            sweep_values=vin, traces={"V_out [V]": vout},
            metadata={"design_gain": f"{gain:g}"}))
        measured_rows.append([gain, metrics.peak_gain, metrics.swing * 1e3])
    result.add_table(
        ["design gain Cg/Cj", "measured inverter peak gain",
         "output swing [mV]"], measured_rows,
        title=f"Complementary SET inverter, master equation at "
              f"T = {spec.temperature} K")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="gain_vs_temperature",
        engine="master",
        temperature=0.2,
        device=dict(STANDARD_DEVICE),
        observables=("tmax_K_gain*", "peak_gain_design*", "swing_V_design*"),
        seed=1,
        params={"gains": [0.5, 1.0, 2.0, 4.0],
                "measured_gains": [1.0, 4.0],
                "transfer_points": 17},
    ),
    compute=_compute_gain_vs_temperature,
    title="Voltage gain = Cg/Cj versus operating temperature",
    claim="Gains > 1 have been reported but are associated with lower "
          "operating temperatures due to increased total node capacitance "
          "(paper S2).",
    expected=("peak_gain_design4 above one and above peak_gain_design1",
              "tmax_K_gain* strictly decreasing with the designed gain"),
))


# --------------------------------------------------------------------- E4

def _compute_room_temperature_set(spec: ScenarioSpec,
                                  context: EngineContext) -> ScenarioResult:
    """Room-temperature operation requires few-nanometre structures."""
    from ..analysis import (
        diameter_for_temperature,
        simulated_oscillation_visibility,
        temperature_scaling_table,
    )
    from ..compact import AnalyticSETModel

    diameters = [float(d) * 1e-9 for d in spec.params["diameters_nm"]]
    margin = float(spec.params["margin"])
    table = temperature_scaling_table(diameters, margin=margin)
    limit = diameter_for_temperature(float(spec.params["target_temperature"]),
                                     margin=margin)

    result = _new_result(spec, context)
    result.metrics["diameter_limit_300K_m"] = limit
    rows = []
    for row in table:
        nm = round(row.diameter * 1e9, 3)
        result.metrics[f"tmax_K_d{nm:g}nm"] = row.max_temperature
        result.metrics[f"room_ok_d{nm:g}nm"] = float(row.room_temperature_ok)
        rows.append([nm, row.total_capacitance * 1e18,
                     row.charging_energy / E_CHARGE * 1e3,
                     row.max_temperature, row.room_temperature_ok])
    result.add_table(
        ["diameter [nm]", "C_sigma [aF]", "E_C [meV]", "T_max [K]",
         "300 K ok?"], rows,
        title=f"Island size versus maximum operating temperature "
              f"(E_C >= {margin:g} kT)")

    visibility_rows = []
    for temperature, total_capacitance in spec.params["visibility_cases"]:
        temperature = float(temperature)
        total_capacitance = float(total_capacitance)
        model = AnalyticSETModel(
            drain_capacitance=total_capacitance / 4.0,
            source_capacitance=total_capacitance / 4.0,
            gate_capacitance=total_capacitance / 2.0,
            temperature=temperature)
        visibility = simulated_oscillation_visibility(model, temperature)
        key = f"visibility_{temperature:g}K_{total_capacitance * 1e18:g}aF"
        result.metrics[key] = visibility
        visibility_rows.append([temperature, total_capacitance * 1e18,
                                visibility])
    result.add_table(
        ["temperature [K]", "C_sigma [aF]", "oscillation visibility"],
        visibility_rows, title="Simulated Coulomb-oscillation visibility")
    result.notes.append(
        f"largest island usable at 300 K: {limit * 1e9:.2f} nm")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="room_temperature_set",
        engine="analytic",
        temperature=300.0,
        observables=("diameter_limit_300K_m", "tmax_K_d*", "room_ok_d*",
                     "visibility_*"),
        seed=1,
        params={"diameters_nm": [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
                "margin": 10.0,
                "target_temperature": 300.0,
                "visibility_cases": [[4.2, 4e-18], [300.0, 4e-18],
                                     [300.0, 0.3e-18]]},
    ),
    compute=_compute_room_temperature_set,
    title="Room-temperature SET: few-nanometre islands required",
    claim="Achieving room temperature operation requires structures in the "
          "few nanometre regime (paper S2).",
    expected=("diameter_limit_300K_m in the (sub-)few-nanometre range",
              "room_ok only for the smallest islands",
              "visibility collapse of a 4 aF island at 300 K"),
))


# --------------------------------------------------------------------- E5

def _compute_setmos_quantizer(spec: ScenarioSpec,
                              context: EngineContext) -> ScenarioResult:
    """A SET-MOS series element implements multi-valued logic with 3 devices."""
    from ..hybrid import SETMOSQuantizer, cmos_periodic_iv_device_count

    span_periods = float(spec.params["span_periods"])
    points_per_period = int(spec.params["points_per_period"])
    quantizer = SETMOSQuantizer()
    analysis = quantizer.level_analysis(input_span_periods=span_periods,
                                        points_per_period=points_per_period)
    monotonicity = quantizer.staircase_quality(span_periods, points_per_period)
    cmos_devices = quantizer.cmos_equivalent_device_count(span_periods)

    result = _new_result(spec, context)
    result.metrics.update({
        "level_count": float(analysis.level_count),
        "level_separation_V": analysis.separation,
        "level_uniformity": analysis.uniformity,
        "staircase_monotonicity": monotonicity,
        "input_period_V": quantizer.input_period,
        "set_device_count": float(quantizer.device_count),
        "cmos_device_count": float(cmos_devices),
        "cmos_periodic_iv_devices":
            float(cmos_periodic_iv_device_count(int(span_periods))),
    })
    result.add_table(
        ["level", "output [mV]"],
        [[index, level * 1e3] for index, level in enumerate(analysis.levels)],
        title="Quantizer output levels")
    result.add_table(
        ["quantity", "value"],
        [
            [f"levels over {span_periods:g} input periods",
             analysis.level_count],
            ["level spacing [mV]", analysis.separation * 1e3],
            ["spacing uniformity", analysis.uniformity],
            ["staircase monotonicity", monotonicity],
            ["SET-MOS active devices", quantizer.device_count],
            ["CMOS flash equivalent devices", cmos_devices],
            ["device-count advantage",
             cmos_devices / quantizer.device_count],
        ],
        title="SET-MOS quantizer figures of merit")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="setmos_quantizer",
        engine="analytic",
        temperature=10.0,
        observables=("level_count", "level_separation_V", "level_uniformity",
                     "staircase_monotonicity", "set_device_count",
                     "cmos_device_count"),
        seed=1,
        params={"span_periods": 4.0, "points_per_period": 16},
    ),
    compute=_compute_setmos_quantizer,
    title="SET-MOS quantizer: multi-valued transfer with 3 devices",
    claim="The series connection of a MOSFET and a SET realises a quantized "
          "transfer characteristic; replicating the SET's periodic IV in "
          "CMOS would need many transistors (paper S3, Inokawa et al.).",
    expected=("one output level per gate period, evenly spaced, monotonic",
              "device-count advantage of an order of magnitude over CMOS"),
))


# --------------------------------------------------------------------- E6

def _compute_set_rng(spec: ScenarioSpec,
                     context: EngineContext) -> ScenarioResult:
    """The SET-MOS random-number generator: power/area/noise advantages."""
    from ..analysis import run_randomness_battery
    from ..hybrid import SingleElectronRNG

    generator = SingleElectronRNG(seed=spec.seed)
    signal = generator.run(sample_count=int(spec.params["signal_samples"]),
                           debias=False)
    bits = generator.generate_bits(int(spec.params["bit_count"]))
    report = run_randomness_battery(bits)
    comparison = generator.compare_with_cmos(
        sample_count=int(spec.params["comparison_samples"]))
    power_orders, area_orders, noise_orders = comparison.orders_of_magnitude()

    result = _new_result(spec, context)
    result.metrics.update({
        "power_orders": power_orders,
        "area_orders": area_orders,
        "noise_orders": noise_orders,
        "output_rms_V": signal.output_rms,
        "output_swing_V": signal.output_swing,
        "raw_bit_bias": float(signal.raw_bits.mean()),
        "battery_pass_count": float(report.pass_count),
        "battery_test_count": float(len(report.p_values)),
        "set_power_W": comparison.set_power,
        "cmos_power_W": comparison.cmos_power,
        "set_area_m2": comparison.set_area,
        "cmos_area_m2": comparison.cmos_area,
        "set_noise_rms_V": comparison.set_noise_rms,
        "cmos_noise_rms_V": comparison.cmos_noise_rms,
    })
    result.add_table(
        ["quantity", "SET-MOS cell", "CMOS RNG macro", "advantage (orders)"],
        [
            ["power [W]", comparison.set_power, comparison.cmos_power,
             power_orders],
            ["area [m^2]", comparison.set_area, comparison.cmos_area,
             area_orders],
            ["noise RMS [V]", comparison.set_noise_rms,
             comparison.cmos_noise_rms, noise_orders],
        ],
        title="SET-MOS RNG versus CMOS thermal-noise RNG macro")
    result.add_table(["test", "p-value", "verdict"], report.summary_rows(),
                     title=f"Randomness battery on {bits.size} debiased bits")
    result.notes.append(
        f"telegraph signal: swing {signal.output_swing * 1e3:.0f} mV, "
        f"RMS {signal.output_rms * 1e3:.0f} mV (paper: 120 mV)")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="set_rng",
        engine="montecarlo",
        temperature=300.0,
        observables=("power_orders", "area_orders", "noise_orders",
                     "output_rms_V", "battery_pass_count", "random_bits"),
        seed=20260616,
        params={"signal_samples": 800, "bit_count": 3000,
                "comparison_samples": 400},
    ),
    compute=_compute_set_rng,
    title="Single-electron RNG: 1e7 lower power, 1e8 smaller area",
    claim="Power consumption of the SET-MOS implementation is seven orders "
          "of magnitude less, at eight orders of magnitude smaller area, "
          "thanks to the large telegraphic noise of ~0.12 V RMS (paper S3, "
          "Uchida et al.).",
    expected=("orders-of-magnitude advantages in the paper's direction",
              "telegraph RMS of the order of a tenth of a volt",
              "a bit stream that passes the NIST-style battery"),
))


# --------------------------------------------------------------------- E7

def _compute_simulator_comparison(spec: ScenarioSpec,
                                  context: EngineContext) -> ScenarioResult:
    """Compact-model versus master-equation versus Monte-Carlo engines."""
    from ..circuit import Circuit
    from ..engines import SweepAxes, analytic_model_for, get_engine
    from ..master import MasterEquationSolver
    from ..montecarlo import MonteCarloSimulator

    device = context.transistor()
    gates = spec.axis("VG").grid()
    drain_voltage = float(spec.params["drain_voltage"])
    temperature = spec.temperature
    axes = SweepAxes(gates, drain_voltage)

    def compact_model(model_temperature):
        """The spec's device expressed as the analytic compact model."""
        return analytic_model_for(device, model_temperature)

    def sweep_with(engine_name):
        """One registry-resolved bind + fast-path sweep of the device."""
        session = get_engine(engine_name).bind(
            device, temperature=temperature, seed=spec.seed,
            max_events=spec.budget.max_events,
            warmup_events=spec.budget.warmup_events)
        return session.sweep(axes).currents

    result = _new_result(spec, context)
    timed = {}
    for label, engine_name in (("compact", "analytic"),
                               ("master", "master"),
                               ("monte_carlo", "montecarlo")):
        # One untimed warm-up call per engine: the comparison is about
        # steady-state sweep cost, not first-call import/compilation and
        # table-construction overhead (which would otherwise dominate the
        # microsecond-scale compact path in a cold process).
        sweep_with(engine_name)
        start = time.perf_counter()
        currents = sweep_with(engine_name)
        timed[label] = (time.perf_counter() - start, currents)
        result.records.append(SweepRecord(
            name=f"id_vg_{label}", sweep_label="V_gate [V]",
            sweep_values=gates, traces={"I_drain [A]": currents},
            metadata={"engine": label}))

    reference = timed["master"][1]
    rows = []
    for label, (runtime, currents) in timed.items():
        deviation = (np.sqrt(np.mean((currents - reference) ** 2))
                     / reference.max())
        result.metrics[f"runtime_s_{label}"] = runtime
        result.metrics[f"rms_dev_{label}"] = deviation
        rows.append([label, runtime * 1e3, deviation * 100.0])
    result.add_table(
        ["engine", "runtime [ms]", "RMS deviation from master [%]"], rows,
        title=f"Id-Vg sweep of one SET ({gates.size} points)")

    # The two physics gaps of the compact model.
    bias = float(spec.params["blockade_bias_fraction"]) \
        * device.blockade_voltage
    compact_leak = compact_model(0.0).drain_current(bias, 0.0)
    cotunneling_leak = MonteCarloSimulator(
        device.build_circuit(drain_voltage=bias), temperature=0.0,
        seed=spec.seed + 1, include_cotunneling=True).stationary_current(
            "J_drain", max_events=int(spec.params["cotunneling_events"]),
            warmup_events=0).mean
    circuit = Circuit("interacting")
    circuit.add_island("dot_a")
    circuit.add_island("dot_b")
    circuit.add_voltage_source("VL", "lead", 0.1)
    circuit.add_junction("J_left", "lead", "dot_a", 1e-18, 1e6)
    circuit.add_junction("J_mid", "dot_a", "dot_b", 0.5e-18, 1e6)
    circuit.add_junction("J_right", "dot_b", "gnd", 1e-18, 1e6)
    circuit.add_capacitor("C_ga", "gnd", "dot_a", 0.5e-18)
    interacting_current = MasterEquationSolver(
        circuit, temperature=2.0, extra_electrons=2).current("J_left")
    result.metrics.update({
        "compact_blockade_leak_A": compact_leak,
        "cotunneling_leak_A": cotunneling_leak,
        "interacting_current_A": interacting_current,
    })
    result.add_table(
        ["quantity", "value"],
        [
            ["compact-model current deep in blockade [A]", compact_leak],
            ["Monte-Carlo co-tunnelling current [A]", cotunneling_leak],
            ["interacting double-island current [nA] (master eq.)",
             interacting_current * 1e9],
        ],
        title="Physics only the detailed engines capture")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="simulator_comparison",
        engine="auto",
        temperature=2.0,
        device=dict(STANDARD_DEVICE),
        sweeps=(SweepAxis("VG", start=0.0, stop=2.0 * STANDARD_GATE_PERIOD,
                          points=129),),
        observables=("runtime_s_*", "rms_dev_*", "compact_blockade_leak_A",
                     "cotunneling_leak_A", "interacting_current_A"),
        seed=4,
        budget=Budget(max_events=2000, warmup_events=200),
        params={"drain_voltage": 5e-3, "blockade_bias_fraction": 0.6,
                "cotunneling_events": 800},
    ),
    compute=_compute_simulator_comparison,
    title="Engine comparison: compact is fast, detailed engines are complete",
    claim="SPICE-based simulators cannot deal with interacting SETs or "
          "higher-order tunnelling; detailed Monte-Carlo simulators capture "
          "all the physics but are limited in circuit size (paper S4).",
    expected=("runtime ordering: compact far faster than the detailed engines",
              "compact tracks the master equation closely on-peak",
              "zero compact current in blockade where co-tunnelling leaks",
              "a conducting interacting double dot only the detailed "
              "engines describe"),
))


# --------------------------------------------------------------------- E8

def _compute_power_dissipation(spec: ScenarioSpec,
                               context: EngineContext) -> ScenarioResult:
    """Chip area and power are the strong points of single-electron logic."""
    from ..hybrid import cmos_periodic_iv_device_count
    from ..logic import compare_logic_power, thermodynamic_limit

    device = context.transistor()
    set_supply = device.blockade_voltage
    comparison = compare_logic_power(
        set_supply_voltage=set_supply,
        cmos_supply_voltage=float(spec.params["cmos_supply_voltage"]),
        cmos_load_capacitance=float(spec.params["cmos_load_capacitance"]),
        frequency=float(spec.params["frequency"]),
        activity_factor=float(spec.params["activity_factor"]),
        electrons_per_event=int(spec.params["electrons_per_event"]),
    )
    periods = int(spec.params["periodic_iv_periods"])

    result = _new_result(spec, context)
    result.metrics.update({
        "set_supply_V": set_supply,
        "set_switching_energy_J": comparison.set_switching_energy,
        "cmos_switching_energy_J": comparison.cmos_switching_energy,
        "set_total_power_W": comparison.set_total_power,
        "cmos_total_power_W": comparison.cmos_total_power,
        "energy_advantage": comparison.energy_advantage,
        "power_advantage": comparison.power_advantage,
        "landauer_300K_J": thermodynamic_limit(300.0),
        "cmos_periodic_iv_devices":
            float(cmos_periodic_iv_device_count(periods)),
    })
    result.add_table(
        ["quantity", "SET logic", "CMOS logic"],
        [
            ["supply voltage [V]", set_supply,
             float(spec.params["cmos_supply_voltage"])],
            ["switching energy [J]", comparison.set_switching_energy,
             comparison.cmos_switching_energy],
            [f"dynamic power at {float(spec.params['frequency']):.0e} Hz [W]",
             comparison.set_dynamic_power, comparison.cmos_dynamic_power],
            ["static power [W]", comparison.set_static_power,
             comparison.cmos_static_power],
            ["total power per gate [W]", comparison.set_total_power,
             comparison.cmos_total_power],
        ],
        title="Switching energy and power: single-electron logic vs CMOS")
    result.notes.append(
        f"switching-energy advantage : {comparison.energy_advantage:.2e}x")
    result.notes.append(
        f"total-power advantage      : {comparison.power_advantage:.2e}x")
    result.notes.append(
        f"Landauer limit at 300 K    : {thermodynamic_limit(300.0):.2e} J")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="power_dissipation",
        engine="analytic",
        temperature=300.0,
        device=dict(STANDARD_DEVICE),
        observables=("set_switching_energy_J", "cmos_switching_energy_J",
                     "energy_advantage", "power_advantage",
                     "landauer_300K_J"),
        seed=1,
        params={"cmos_supply_voltage": 1.0, "cmos_load_capacitance": 1e-15,
                "frequency": 1e9, "activity_factor": 0.1,
                "electrons_per_event": 2, "periodic_iv_periods": 4},
    ),
    compute=_compute_power_dissipation,
    title="Power dissipation: orders-of-magnitude switching-energy advantage",
    claim="Chip area (cost) and power advantages are the real strong points "
          "of a single-electron technology (paper S2; S4 Mahapatra et al.).",
    expected=("energy advantage above 1e3, power advantage above 1e2",
              "both technologies far above the Landauer bound"),
))


# --------------------------------------------------------------------- E9

def _compute_speed_limits(spec: ScenarioSpec,
                          context: EngineContext) -> ScenarioResult:
    """Sub-picosecond tunnelling versus slower AM/FM decisions."""
    from ..core import (
        charging_time,
        heisenberg_tunnel_time,
        tunnel_traversal_time,
    )
    from ..devices import AMFMSET
    from ..logic import FMCodedSETLogic
    from ..master import MasterEquationDynamics
    from ..units import electronvolt

    device = context.transistor()
    barrier_energy = electronvolt(float(spec.params["barrier_height_eV"]))
    traversal = tunnel_traversal_time(
        barrier_energy, barrier_width=float(spec.params["barrier_width_m"]))
    heisenberg = heisenberg_tunnel_time(barrier_energy)
    rc_time = charging_time(device.junction_resistance,
                            device.total_capacitance)
    dynamics = MasterEquationDynamics(
        device.build_circuit(drain_voltage=0.05, gate_voltage=0.04),
        temperature=spec.temperature)
    settling = dynamics.relaxation_time()

    amfm = AMFMSET(**dict(spec.params["amfm_device"]))
    fm = FMCodedSETLogic(amfm, drain_voltage=2e-3,
                         temperature=spec.temperature, periods=3.0,
                         points_per_period=16)
    points_per_decision = fm.decision_periods * fm.points_per_period
    fm_latency = points_per_decision * settling

    result = _new_result(spec, context)
    result.metrics.update({
        "tunnel_traversal_s": traversal,
        "heisenberg_s": heisenberg,
        "rc_time_s": rc_time,
        "settling_s": settling,
        "fm_decision_periods": fm.decision_periods,
        "fm_latency_s": fm_latency,
    })
    result.add_table(
        ["timescale", "value [s]"],
        [
            ["quantum tunnel traversal "
             f"({spec.params['barrier_height_eV']:g} eV, "
             f"{float(spec.params['barrier_width_m']) * 1e9:g} nm)",
             traversal],
            ["Heisenberg estimate hbar/E_b", heisenberg],
            ["junction RC time", rc_time],
            ["circuit settling time (master eq.)", settling],
            ["FM-coded decision latency", fm_latency],
        ],
        title="Timescales from tunnelling to an FM logic decision")
    result.notes.append(
        f"FM decision needs {fm.decision_periods:.0f} Id-Vg periods "
        "(direct coding: a single sample)")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="speed_limits",
        engine="master",
        temperature=1.0,
        device=dict(STANDARD_DEVICE),
        observables=("tunnel_traversal_s", "heisenberg_s", "rc_time_s",
                     "settling_s", "fm_latency_s", "fm_decision_periods"),
        seed=1,
        params={"barrier_height_eV": 1.0, "barrier_width_m": 2e-9,
                "amfm_device": {"junction_capacitance": 1e-18,
                                "junction_resistance": 1e6,
                                "gate_capacitance_low": 1.5e-18,
                                "gate_capacitance_high": 3e-18}},
    ),
    compute=_compute_speed_limits,
    title="Speed limits: sub-picosecond tunnelling, many-period FM decisions",
    claim="The fundamental speed limit of SETs is the sub-picosecond "
          "tunnelling process; AM/FM-coded logic has to be slower because "
          "several periods are used per decision (paper S2).",
    expected=("tunnel traversal and Heisenberg times below 1 ps",
              "RC/settling times below 1 ns",
              "FM decision latency orders of magnitude above one event"),
))


# -------------------------------------------------------------------- E10

def _compute_electrometer(spec: ScenarioSpec,
                          context: EngineContext) -> ScenarioResult:
    """The SET as a super-sensitive electrometer."""
    from ..devices import SETElectrometer

    device = context.transistor()
    electrometer = SETElectrometer(device, temperature=spec.temperature)
    gate_voltages = spec.axis("VG").grid()
    profile = [electrometer.charge_sensitivity(v) for v in gate_voltages]
    finite = [r for r in profile
              if np.isfinite(r.sensitivity_e_per_sqrt_hz)]
    best = min(finite, key=lambda r: r.sensitivity_e_per_sqrt_hz)
    gains = [abs(r.transconductance_per_charge) for r in profile]

    result = _new_result(spec, context)
    result.metrics.update({
        "best_sensitivity_e_per_sqrt_hz": best.sensitivity_e_per_sqrt_hz,
        "best_gate_voltage_V": best.gate_voltage,
        "min_detectable_charge_1MHz_e": best.minimum_detectable_charge(1e6),
        "max_transconductance_per_charge": max(gains),
        "min_transconductance_per_charge": min(gains),
    })
    result.add_table(
        ["V_gate [mV]", "I [pA]", "dI/dq0 [nA/e]",
         "sensitivity [micro-e/sqrt(Hz)]"],
        [[r.gate_voltage * 1e3, r.current * 1e12,
          r.transconductance_per_charge * E_CHARGE * 1e9,
          r.sensitivity_e_per_sqrt_hz * 1e6] for r in profile],
        title=f"T = {spec.temperature} K, Vd = half the blockade voltage")
    result.records.append(SweepRecord(
        name="sensitivity_profile", sweep_label="V_gate [V]",
        sweep_values=gate_voltages,
        traces={"sensitivity [e/sqrt(Hz)]":
                np.asarray([r.sensitivity_e_per_sqrt_hz for r in profile]),
                "I_drain [A]": np.asarray([r.current for r in profile])},
        metadata={"temperature_K": f"{spec.temperature:g}"}))
    result.notes.append(
        f"best operating point: Vg = {best.gate_voltage * 1e3:.1f} mV, "
        f"sensitivity = {best.sensitivity_e_per_sqrt_hz * 1e6:.1f} "
        "micro-e/sqrt(Hz)")
    for bandwidth in (1.0, 1e3, 1e6):
        result.notes.append(
            f"  minimum detectable charge in {bandwidth:>9.0f} Hz: "
            f"{best.minimum_detectable_charge(bandwidth):.2e} e")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="electrometer",
        engine="master",
        temperature=0.3,
        device=dict(STANDARD_DEVICE),
        sweeps=(SweepAxis("VG", start=0.0, stop=STANDARD_GATE_PERIOD,
                          points=13),),
        observables=("best_sensitivity_e_per_sqrt_hz",
                     "min_detectable_charge_1MHz_e",
                     "max_transconductance_per_charge"),
        seed=1,
    ),
    compute=_compute_electrometer,
    title="Electrometer: charge sensitivity far below a single electron",
    claim="One can build super sensitive electrometers from the SET's large "
          "charge sensitivity (paper S2).",
    expected=("best sensitivity far below 1e-3 e/sqrt(Hz)",
              "sub-single-electron resolution over a 1 MHz bandwidth",
              "strongly gate-dependent transconductance (the flank beats "
              "the blockade centre)"),
))


# -------------------------------------------------------------------- D1

def _compute_design_margin_map(spec: ScenarioSpec,
                               context: EngineContext) -> ScenarioResult:
    """Classify a device grid against the paper's feasibility constraints."""
    from ..design import DesignSpec, DeviceScan

    design = DesignSpec.from_dict(
        {**dict(spec.params["design"]), "engine": context.engine})
    scan = DeviceScan(design)
    feasibility = scan.run()

    result = _new_result(spec, context)
    counts = feasibility.counts()
    result.metrics.update({
        "grid_points": float(feasibility.size),
        "feasible_points": float(counts["feasible"]),
        "infeasible_points": float(counts["infeasible"]),
        "unknown_points": float(counts["unknown"]),
        "feasible_fraction": feasibility.feasible_fraction,
    })
    best = feasibility.most_robust_point()
    if best is not None:
        result.metrics["best_margin"] = float(feasibility.robustness[best])
        for parameter, value in feasibility.point_parameters(best).items():
            result.metrics[f"best_{parameter}"] = value
    rows = []
    for row, meta in enumerate(feasibility.constraints):
        margins = feasibility.margins[row]
        finite = margins[np.isfinite(margins)]
        rows.append([meta["name"], meta["kind"], f"{meta['threshold']:g}",
                     float(finite.min()), float(finite.max()),
                     int(np.sum(finite >= 0.0))])
    result.add_table(
        ["constraint", "kind", "threshold", "min margin", "max margin",
         "points passing"], rows,
        title=f"constraint margins over the {feasibility.size}-point grid "
              f"(engine = {context.engine})")
    result.notes.extend(feasibility.summary_lines())
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="design_margin_map",
        engine="auto",
        temperature=1.0,
        device=dict(STANDARD_DEVICE),
        observables=("feasible_fraction", "feasible_points", "best_margin"),
        seed=1,
        params={"design": {
            "name": "margin_map",
            "device": dict(STANDARD_DEVICE),
            "axes": [
                {"parameter": "gate_capacitance", "start": 5e-19,
                 "stop": 8e-18, "points": 12, "spacing": "log"},
                {"parameter": "temperature",
                 "values": [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]},
            ],
            "constraints": [
                {"type": "gain", "threshold": 1.0},
                {"type": "on_off_ratio", "threshold": 10.0},
                {"type": "max_temperature"},
                {"type": "modulation_depth", "threshold": 0.5},
            ],
            "drain_voltage": 2e-3,
            "chunk_size": 24,
        }},
    ),
    compute=_compute_design_margin_map,
    supported_engines=("auto", "analytic", "master"),
    title="Design margin map: where the SET actually works",
    claim="Single-electron devices only function inside narrow windows of "
          "capacitance and temperature; the feasible region shrinks as "
          "either grows (paper S2).",
    expected=("a feasible region at small gate capacitance and low "
              "temperature",
              "feasible_fraction strictly between 0 and 1",
              "per-constraint margin table with both passing and failing "
              "points"),
))


# -------------------------------------------------------------------- D2

def _compute_tolerance_yield(spec: ScenarioSpec,
                             context: EngineContext) -> ScenarioResult:
    """Component-tolerance Monte-Carlo yield across a design sweep."""
    from ..design import DesignSpec, DeviceScan, analyze_yield

    design = DesignSpec.from_dict(
        {**dict(spec.params["design"]), "engine": context.engine})
    feasibility = DeviceScan(design).run()
    yields = feasibility.yield_grid().ravel()

    result = _new_result(spec, context)
    result.metrics.update({
        "grid_points": float(feasibility.size),
        "nominal_feasible_fraction": feasibility.feasible_fraction,
        "yield_min": float(np.nanmin(yields)),
        "yield_mean": float(np.nanmean(yields)),
        "yield_max": float(np.nanmax(yields)),
    })
    analysis_point = int(spec.params["analysis_point"])
    report = analyze_yield(design, flat_index=analysis_point)
    result.metrics["analysis_yield_fraction"] = report.yield_fraction
    result.metrics["analysis_worst_case_feasible"] = \
        float(report.worst_case_feasible)
    result.metrics["analysis_corners"] = float(len(report.corners))

    rows = []
    for flat in range(feasibility.size):
        assignment = feasibility.point_parameters(flat)
        rows.append([", ".join(f"{k}={v:g}"
                               for k, v in assignment.items()),
                     {1: "feasible", 0: "infeasible",
                      -1: "unknown"}[int(feasibility.verdicts[flat])],
                     float(feasibility.robustness[flat]),
                     float(yields[flat])])
    result.add_table(
        ["design point", "nominal verdict", "margin", "yield"], rows,
        title=f"tolerance yield over {design.tolerance_samples} seeded "
              f"samples per point (engine = {context.engine})")
    result.add_table(
        ["corner", "feasible"],
        [[", ".join(f"{k}={v:g}" for k, v in corner["assignment"].items()),
          "yes" if corner["feasible"] else "no"]
         for corner in report.corners],
        title=f"worst-case corners at design point #{analysis_point}")
    result.notes.append(
        f"yield is reproducible for any worker count: each element draws "
        f"from its own SHA-256 seed stream (root seed {design.seed})")
    return result


register_scenario(Scenario(
    spec=ScenarioSpec(
        name="tolerance_yield",
        engine="auto",
        temperature=1.0,
        device=dict(STANDARD_DEVICE),
        observables=("yield_min", "yield_mean", "yield_max",
                     "analysis_yield_fraction",
                     "analysis_worst_case_feasible"),
        seed=7,
        params={"design": {
            "name": "tolerance_yield",
            "device": dict(STANDARD_DEVICE),
            "axes": [
                {"parameter": "gate_capacitance", "start": 8e-19,
                 "stop": 5e-18, "points": 9, "spacing": "log"},
            ],
            "constraints": [
                {"type": "gain", "threshold": 1.0},
                {"type": "on_off_ratio", "threshold": 10.0},
                {"type": "max_temperature"},
            ],
            "drain_voltage": 2e-3,
            "seed": 7,
            "tolerances": {
                "junction_capacitance": {"kind": "tolerance",
                                         "tolerance": 0.2},
                "gate_capacitance": {"kind": "tolerance", "tolerance": 0.2,
                                     "distribution": "normal"},
                "junction_resistance": {"kind": "tolerance",
                                        "tolerance": 0.3},
            },
            "tolerance_samples": 32,
            "chunk_size": 16,
        }, "analysis_point": 4},
    ),
    compute=_compute_tolerance_yield,
    supported_engines=("auto", "analytic", "master"),
    title="Tolerance yield: how much fabrication spread a design survives",
    claim="Feasible designs near the window edge are fragile: component "
          "tolerances push them out, so usable yield falls before the "
          "nominal design fails (paper S2).",
    expected=("per-point tolerance-MC yield between 0 and 1",
              "yield lowest at the fragile edge of the feasible window",
              "a worst-case corner table for the analysis point"),
))


__all__ = ["STANDARD_DEVICE", "STANDARD_GATE_PERIOD"]
