"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the complete, serialisable description of one
workload: the device parameters, the engine to use (or ``"auto"``), the sweep
axes, the observables the scenario promises to produce, the random seed, and
the stochastic-budget knobs.  Specs load from plain dicts, JSON, or TOML, and
canonicalise to a stable JSON form whose SHA-256 hash keys the result cache —
two specs with the same content always hash identically, and any change to
any field produces a different hash (and therefore a cache miss).
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ValidationError
from ..io.results import content_hash

#: The built-in engine names a spec may request.  ``"auto"`` defers the
#: choice to :func:`repro.scenarios.engines.select_engine`.  Validation goes
#: through :func:`known_engine_names`, so engines registered with
#: :func:`repro.engines.register_engine` are accepted too — this tuple is
#: the documented built-in set (and the CLI's completion hint), not the
#: source of truth.
ENGINES = ("auto", "montecarlo", "ensemble", "master", "analytic")


def known_engine_names() -> Tuple[str, ...]:
    """``("auto",)`` plus every engine currently in the registry.

    The single source of truth for spec-level engine validation: a backend
    registered via :func:`repro.engines.register_engine` becomes a legal
    ``ScenarioSpec.engine`` value immediately.
    """
    from ..engines.registry import engine_names

    return ("auto",) + tuple(engine_names())


@dataclass(frozen=True)
class SweepAxis:
    """One swept quantity of a scenario.

    Either an explicit value list (``values``) or a linear grid
    (``start``/``stop``/``points``/``endpoint``) — exactly one of the two
    forms must be used.

    Parameters
    ----------
    source:
        Name of the swept quantity — a voltage-source element name such as
        ``"VG"``, or a scenario-defined parameter name.
    start, stop:
        Grid end points (used when ``values`` is ``None``).
    points:
        Number of grid points.
    endpoint:
        Whether ``stop`` is included (``numpy.linspace`` semantics).
    values:
        Explicit values; overrides the grid fields.
    unit:
        Unit label for documentation and tables (default volt).
    """

    source: str
    start: float = 0.0
    stop: float = 0.0
    points: int = 0
    endpoint: bool = True
    values: Optional[Tuple[float, ...]] = None
    unit: str = "V"

    def __post_init__(self) -> None:
        if self.values is not None:
            if len(self.values) == 0:
                raise ValidationError(
                    f"sweep axis {self.source!r} has an empty values list")
            object.__setattr__(self, "values",
                               tuple(float(v) for v in self.values))
        elif self.points < 2:
            raise ValidationError(
                f"sweep axis {self.source!r} needs values or points >= 2")

    def grid(self) -> np.ndarray:
        """The axis as a float array."""
        if self.values is not None:
            return np.asarray(self.values, dtype=float)
        return np.linspace(float(self.start), float(self.stop),
                           int(self.points), endpoint=bool(self.endpoint))

    def to_dict(self) -> Dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        payload: Dict = {"source": self.source, "unit": self.unit}
        if self.values is not None:
            payload["values"] = list(self.values)
        else:
            payload.update(start=self.start, stop=self.stop,
                           points=self.points, endpoint=self.endpoint)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepAxis":
        """Build an axis from a plain dict (JSON/TOML deserialisation)."""
        _reject_unknown_keys("sweep axis", payload,
                             ("source", "start", "stop", "points", "endpoint",
                              "values", "unit"))
        values = payload.get("values")
        with _coercion_errors("sweep axis"):
            return cls(source=str(payload["source"]),
                       start=float(payload.get("start", 0.0)),
                       stop=float(payload.get("stop", 0.0)),
                       points=int(payload.get("points", 0)),
                       endpoint=bool(payload.get("endpoint", True)),
                       values=None if values is None else tuple(values),
                       unit=str(payload.get("unit", "V")))


@dataclass(frozen=True)
class Budget:
    """Stochastic-work and parallelism budget of a scenario.

    Parameters
    ----------
    max_events:
        Monte-Carlo events per estimate (after warm-up).
    warmup_events:
        Events discarded to forget the initial condition.
    replicas:
        Ensemble replica count; ``0`` means single-trajectory estimators.
    workers:
        Worker processes for sweep fan-out (``1`` = in-process).
    """

    max_events: int = 20_000
    warmup_events: int = 1_000
    replicas: int = 0
    workers: int = 1

    def __post_init__(self) -> None:
        if self.max_events < 1:
            raise ValidationError("budget.max_events must be >= 1")
        if self.warmup_events < 0:
            raise ValidationError("budget.warmup_events must be >= 0")
        if self.replicas < 0:
            raise ValidationError("budget.replicas must be >= 0")
        if self.workers < 1:
            raise ValidationError("budget.workers must be >= 1")

    def to_dict(self) -> Dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {"max_events": self.max_events,
                "warmup_events": self.warmup_events,
                "replicas": self.replicas,
                "workers": self.workers}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Budget":
        """Build a budget from a plain dict."""
        _reject_unknown_keys("budget", payload,
                             ("max_events", "warmup_events", "replicas",
                              "workers"))
        with _coercion_errors("budget"):
            return cls(max_events=int(payload.get("max_events", 20_000)),
                       warmup_events=int(payload.get("warmup_events", 1_000)),
                       replicas=int(payload.get("replicas", 0)),
                       workers=int(payload.get("workers", 1)))


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete declarative description of one workload.

    Parameters
    ----------
    name:
        Registry name of the scenario (``snake_case``).
    engine:
        Any registered engine name, or ``"auto"`` to let the runner pick
        (see :func:`known_engine_names`; the built-ins are
        :data:`ENGINES`).
    temperature:
        Operating temperature in kelvin.
    device:
        Device parameters (capacitances in farad, resistances in ohm, ...).
        Interpreted by the scenario's compute function; for SET-based
        scenarios the keys mirror :class:`repro.devices.SETTransistor`.
    sweeps:
        The swept axes, in order.
    observables:
        Names of the metrics the scenario promises to produce (documented in
        ``docs/scenarios.md``; ``repro describe`` prints them).
    seed:
        Root seed for every stochastic engine the scenario touches.
    budget:
        Event/replica/worker budget.
    params:
        Scenario-specific extra knobs (plain JSON-able values only).
    """

    name: str
    engine: str = "auto"
    temperature: float = 1.0
    device: Mapping[str, float] = field(default_factory=dict)
    sweeps: Tuple[SweepAxis, ...] = ()
    observables: Tuple[str, ...] = ()
    seed: int = 1
    budget: Budget = field(default_factory=Budget)
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario spec needs a name")
        known = known_engine_names()
        if self.engine not in known:
            raise ValidationError(
                f"unknown engine {self.engine!r}; choose from {known}")
        object.__setattr__(self, "device", dict(self.device))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "sweeps", tuple(self.sweeps))
        object.__setattr__(self, "observables",
                           tuple(str(o) for o in self.observables))

    # ------------------------------------------------------------ conversions

    def with_engine(self, engine: Optional[str]) -> "ScenarioSpec":
        """A copy with the engine replaced (``None`` returns ``self``)."""
        if engine is None or engine == self.engine:
            return self
        return dataclasses.replace(self, engine=engine)

    def axis(self, source: str) -> SweepAxis:
        """Look up a sweep axis by its ``source`` name."""
        for axis in self.sweeps:
            if axis.source == source:
                return axis
        raise ValidationError(
            f"scenario {self.name!r} has no sweep axis {source!r}; "
            f"axes: {[a.source for a in self.sweeps]}")

    def to_dict(self) -> Dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "engine": self.engine,
            "temperature": self.temperature,
            "device": dict(self.device),
            "sweeps": [axis.to_dict() for axis in self.sweeps],
            "observables": list(self.observables),
            "seed": self.seed,
            "budget": self.budget.to_dict(),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioSpec":
        """Build a spec from a plain dict (the JSON/TOML document root).

        Unknown keys are rejected rather than silently dropped: a typo in a
        spec document must not fall back to a default and then be cached as
        if the author's intent had been honoured.
        """
        _reject_unknown_keys("scenario spec", payload,
                             ("name", "engine", "temperature", "device",
                              "sweeps", "observables", "seed", "budget",
                              "params"))
        try:
            name = str(payload["name"])
        except KeyError:
            raise ValidationError("scenario document needs a 'name'") from None
        observables = payload.get("observables", ())
        if isinstance(observables, str):
            raise ValidationError(
                "'observables' must be a list of names, not a single string")
        with _coercion_errors("scenario spec"):
            return cls(
                name=name,
                engine=str(payload.get("engine", "auto")),
                temperature=float(payload.get("temperature", 1.0)),
                device=dict(payload.get("device", {})),
                sweeps=tuple(SweepAxis.from_dict(axis)
                             for axis in payload.get("sweeps", ())),
                observables=tuple(observables),
                seed=int(payload.get("seed", 1)),
                budget=Budget.from_dict(payload.get("budget", {})),
                params=dict(payload.get("params", {})),
            )

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "ScenarioSpec":
        """Parse a spec from JSON text or a ``.json`` file path."""
        text = _read_maybe_path(source)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_toml(cls, source: Union[str, Path]) -> "ScenarioSpec":
        """Parse a spec from TOML text or a ``.toml`` file path.

        Uses the standard-library ``tomllib`` (Python 3.11+) with a
        ``tomli`` fallback on 3.10; without either, use JSON specs.
        """
        tomllib = _toml_parser()
        text = _read_maybe_path(source)
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ValidationError(f"invalid scenario TOML: {error}") from None
        # Allow the spec to live under a [scenario] table or at the root.
        if "scenario" in payload and isinstance(payload["scenario"], dict):
            payload = payload["scenario"]
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Load a spec file, picking the parser from the extension."""
        path = Path(path)
        if path.suffix.lower() == ".toml":
            return cls.from_toml(path)
        return cls.from_json(path)

    # ----------------------------------------------------------------- hashing

    def canonical_json(self) -> str:
        """Stable JSON form: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 hash of :meth:`canonical_json` — the cache identity."""
        return content_hash(self.canonical_json())


@contextlib.contextmanager
def _coercion_errors(label: str):
    """Turn bare ``float()``/``int()`` failures into :class:`ValidationError`.

    :class:`ValidationError` itself passes through untouched (it is not a
    :class:`ValueError`), so field-validation messages keep their detail.
    """
    try:
        yield
    except (TypeError, ValueError) as error:
        raise ValidationError(f"invalid {label} value: {error}") from None


def _toml_parser():
    """The available TOML parser module (``tomllib``, or ``tomli`` on 3.10)."""
    try:
        import tomllib
        return tomllib
    except ModuleNotFoundError:
        try:
            import tomli
            return tomli
        except ModuleNotFoundError:
            raise ValidationError(
                "TOML spec documents need Python >= 3.11 (tomllib) or the "
                "'tomli' package; use a JSON spec instead") from None


def _reject_unknown_keys(label: str, payload: Mapping,
                         known: Sequence[str]) -> None:
    """Raise :class:`ValidationError` when a document carries unknown keys."""
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ValidationError(
            f"unknown {label} key(s) {unknown}; known keys: {sorted(known)}")


def _read_maybe_path(source: Union[str, Path]) -> str:
    """Return file contents when ``source`` is an existing path, else ``source``."""
    if isinstance(source, Path):
        try:
            return source.read_text()
        except OSError as error:
            raise ValidationError(
                f"cannot read scenario spec file {source}: {error}") from None
    candidate = Path(source)
    try:
        if candidate.is_file():
            return candidate.read_text()
    except OSError:
        pass
    return str(source)


__all__ = ["Budget", "ENGINES", "ScenarioSpec", "SweepAxis",
           "known_engine_names"]
