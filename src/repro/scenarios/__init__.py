"""Declarative scenarios: config-driven workloads over every engine.

This package is the cross-engine orchestration layer: a
:class:`~repro.scenarios.spec.ScenarioSpec` declares *what* to run (device,
engine, sweeps, observables, seed, budget), the registry maps names to the
~10 canonical paper scenarios, and the
:class:`~repro.scenarios.runner.ScenarioRunner` executes specs through the
right engine fast path while persisting results in the content-hash cache of
:mod:`repro.io.results` — a second run of the same spec is served from disk
without dispatching any engine.

Quickstart
----------
>>> from repro.scenarios import run_scenario
>>> result = run_scenario("coulomb_oscillations")
>>> result.metric("gate_period_theory_V")  # doctest: +SKIP
0.0801...

The same entry point powers the CLI: ``python -m repro run
coulomb_oscillations``.
"""

from .engines import EngineContext, select_engine
from .registry import (
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .result import ResultTable, ScenarioResult
from .runner import ScenarioRunner, default_cache_dir
from .spec import Budget, ENGINES, ScenarioSpec, SweepAxis, known_engine_names

__all__ = [
    "Budget",
    "ENGINES",
    "EngineContext",
    "ResultTable",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "SweepAxis",
    "default_cache_dir",
    "get_scenario",
    "iter_scenarios",
    "known_engine_names",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "select_engine",
]
