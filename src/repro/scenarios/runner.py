"""The scenario runner: cache-aware, engine-dispatching execution.

:class:`ScenarioRunner` is the orchestration layer between the declarative
registry and the four engines.  Per run it

1. resolves the scenario and applies an optional engine override,
2. consults the content-hash result cache (spec hash + code version); a hit
   is served directly — **no engine is dispatched** — and logged as such,
3. on a miss builds an :class:`~repro.scenarios.engines.EngineContext`
   (which resolves ``engine="auto"`` through the selection heuristic) and
   calls the scenario's compute function,
4. stores the deterministic payload back into the cache and stamps the
   ``meta`` block (engine, elapsed seconds, spec hash, cache status).
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

from ..errors import ValidationError
from ..io.results import ResultCache
from .engines import EngineContext
from .registry import Scenario, get_scenario
from .result import ScenarioResult
from .spec import ScenarioSpec

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The scenario cache directory (``$REPRO_CACHE_DIR`` wins)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro/scenarios").expanduser()


class ScenarioRunner:
    """Runs scenarios through the cache and the engine-dispatch layer.

    Parameters
    ----------
    use_cache:
        Consult/fill the result cache (default).  ``False`` always
        recomputes and never writes.
    cache_dir:
        Cache directory (default :func:`default_cache_dir`).
    cache:
        Pre-built :class:`~repro.io.results.ResultCache` (overrides
        ``cache_dir``; useful for tests).
    log:
        Callback receiving one-line progress strings (``None`` = silent).
    """

    def __init__(self, use_cache: bool = True,
                 cache_dir: Union[str, Path, None] = None,
                 cache: Optional[ResultCache] = None,
                 log=None) -> None:
        self.use_cache = bool(use_cache)
        if cache is not None:
            self.cache = cache
        else:
            self.cache = ResultCache(cache_dir if cache_dir is not None
                                     else default_cache_dir())
        self._log = log

    def log(self, message: str) -> None:
        """Emit one progress line."""
        if self._log is not None:
            self._log(message)

    def run(self, scenario: Union[str, Scenario],
            engine: Optional[str] = None) -> ScenarioResult:
        """Run one scenario (by name or object), serving cache hits.

        Parameters
        ----------
        scenario:
            Registered scenario name, or a :class:`Scenario` object (which
            need not be registered — ad-hoc specs work too).
        engine:
            Optional engine override; folded into the spec, so it changes
            the cache identity.

        Returns
        -------
        ScenarioResult
            With ``meta["cache"]`` set to ``"hit"``, ``"miss"``, or
            ``"off"``.
        """
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        spec = scenario.spec.with_engine(engine)
        allowed = scenario.allowed_engines()
        if spec.engine not in allowed:
            raise ValidationError(
                f"scenario {spec.name!r} does not dispatch on engine "
                f"{spec.engine!r}; supported engine(s): {sorted(allowed)}")
        spec_hash = spec.content_hash()
        key = self.cache.key_for(spec_hash)

        if self.use_cache:
            artifact = self.cache.load(key)
            if artifact is not None and "payload" in artifact:
                result = ScenarioResult.from_payload(
                    artifact["payload"],
                    meta={"cache": "hit", "spec_hash": spec_hash,
                          "cache_key": key,
                          "artifact": str(self.cache.path_for(key)),
                          "elapsed_seconds": 0.0})
                self.log(f"cache hit for {spec.name!r} "
                         f"[{key[:12]}]: served from "
                         f"{self.cache.path_for(key)} (no engine dispatch)")
                return result

        context = EngineContext(spec, log=self._log)
        self.log(f"running {spec.name!r} on engine {context.engine!r} "
                 f"[{key[:12]}]")
        started = time.perf_counter()
        result = scenario.compute(spec, context)
        elapsed = time.perf_counter() - started
        if not isinstance(result, ScenarioResult):
            raise ValidationError(
                f"scenario {spec.name!r} returned "
                f"{type(result).__name__}, expected ScenarioResult")
        result.meta.update({
            "cache": "miss" if self.use_cache else "off",
            "spec_hash": spec_hash,
            "cache_key": key,
            "elapsed_seconds": elapsed,
        })
        if self.use_cache:
            path = self.cache.store(key, {
                "format": 1,
                "spec": spec.to_dict(),
                "spec_hash": spec_hash,
                "payload": result.payload_dict(),
            })
            if path is None:
                # Unwritable cache: the run still succeeded, it just will
                # not be served from cache next time.
                self.log(f"could not store {spec.name!r} result "
                         "(cache unwritable; run completed uncached)")
            else:
                result.meta["artifact"] = str(path)
                self.log(f"stored {spec.name!r} result at {path}")
        return result

    def run_spec(self, spec: ScenarioSpec,
                 engine: Optional[str] = None) -> ScenarioResult:
        """Run an ad-hoc spec with the registered compute of ``spec.name``.

        Loads the registered scenario of the same name for its compute
        function but executes it against ``spec`` — this is how a JSON/TOML
        spec file with tweaked knobs runs through the standard machinery.
        """
        registered = get_scenario(spec.name)
        return self.run(Scenario(spec=spec, compute=registered.compute,
                                 title=registered.title,
                                 claim=registered.claim,
                                 expected=registered.expected,
                                 supported_engines=registered.allowed_engines()),
                        engine=engine)


__all__ = ["CACHE_DIR_ENV", "ScenarioRunner", "default_cache_dir"]
