"""Scenario results: metrics, tables, sweep records, and JSON round-trips.

A :class:`ScenarioResult` is the uniform product of every scenario run:
named scalar ``metrics`` (what benchmarks assert on), printable ``tables``,
full :class:`~repro.io.results.SweepRecord` traces, free-form ``notes``, and
a ``meta`` block.  Everything except ``meta`` serialises to a canonical JSON
*payload* — that payload is what the result cache stores, and for seeded
deterministic scenarios a cached run byte-matches a fresh run.  (Scenarios
whose *results* are measurements of the machine — ``simulator_comparison``'s
wall-clock ``runtime_s_*`` metrics — cache the values measured when the
artifact was computed.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..io.results import SweepRecord
from ..io.tables import format_table


@dataclass
class ResultTable:
    """One printable table of a scenario result.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cells (numbers, strings, or booleans).
    title:
        Optional table caption.
    """

    headers: List[str]
    rows: List[List[object]]
    title: str = ""

    def to_dict(self) -> Dict:
        """JSON-able form with every cell canonicalised."""
        return {"title": self.title,
                "headers": [str(h) for h in self.headers],
                "rows": [[_jsonify(cell) for cell in row]
                         for row in self.rows]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ResultTable":
        """Inverse of :meth:`to_dict`."""
        return cls(headers=list(payload.get("headers", [])),
                   rows=[list(row) for row in payload.get("rows", [])],
                   title=str(payload.get("title", "")))


@dataclass
class ScenarioResult:
    """The uniform product of one scenario run.

    Parameters
    ----------
    name:
        Scenario name.
    engine:
        Engine that actually ran (after ``"auto"`` resolution).
    metrics:
        Named scalar results; the quantitative claims live here.
    tables:
        Printable tables (mirrors what the old benchmark scripts printed).
    records:
        Full sweep traces for archiving/re-plotting.
    notes:
        Free-form one-line remarks printed after the tables.
    meta:
        Run metadata (elapsed seconds, cache status, spec hash).  Excluded
        from :meth:`payload_dict`, so cached and fresh runs byte-match.
    """

    name: str
    engine: str
    metrics: Dict[str, float] = field(default_factory=dict)
    tables: List[ResultTable] = field(default_factory=list)
    records: List[SweepRecord] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors

    def metric(self, name: str) -> float:
        """Look up one metric by name (raises with the known names on typo)."""
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(
                f"unknown metric {name!r}; known metrics: "
                f"{sorted(self.metrics)}") from None

    def record(self, name: str) -> SweepRecord:
        """Look up one sweep record by name."""
        for record in self.records:
            if record.name == name:
                return record
        raise AnalysisError(
            f"unknown record {name!r}; known records: "
            f"{sorted(r.name for r in self.records)}")

    @property
    def cache_hit(self) -> bool:
        """Whether this result was served from the result cache."""
        return self.meta.get("cache") == "hit"

    # ----------------------------------------------------------- presentation

    def add_table(self, headers: Sequence[str], rows: Sequence[Sequence[object]],
                  title: str = "") -> None:
        """Append a printable table."""
        self.tables.append(ResultTable(headers=list(headers),
                                       rows=[list(row) for row in rows],
                                       title=title))

    def print(self, file=None) -> None:
        """Print every table and note (the CLI's ``run`` output)."""
        for table in self.tables:
            print(format_table(table.headers, table.rows,
                               title=table.title or None), file=file)
            print(file=file)
        for note in self.notes:
            print(note, file=file)

    # ----------------------------------------------------------- round trips

    def payload_dict(self) -> Dict:
        """The deterministic payload (everything except ``meta``)."""
        return {
            "name": self.name,
            "engine": self.engine,
            "metrics": {key: _jsonify(value)
                        for key, value in sorted(self.metrics.items())},
            "tables": [table.to_dict() for table in self.tables],
            "records": [_record_to_dict(record) for record in self.records],
            "notes": [str(note) for note in self.notes],
        }

    def payload_json(self) -> str:
        """Canonical JSON of :meth:`payload_dict` (the byte-match surface)."""
        import json

        return json.dumps(self.payload_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_payload(cls, payload: Mapping,
                     meta: Optional[Dict] = None) -> "ScenarioResult":
        """Rebuild a result from a stored payload (cache hits)."""
        return cls(
            name=str(payload["name"]),
            engine=str(payload["engine"]),
            metrics={str(key): value
                     for key, value in payload.get("metrics", {}).items()},
            tables=[ResultTable.from_dict(table)
                    for table in payload.get("tables", [])],
            records=[_record_from_dict(record)
                     for record in payload.get("records", [])],
            notes=[str(note) for note in payload.get("notes", [])],
            meta=dict(meta or {}),
        )


def _jsonify(value):
    """Convert one cell/metric value to a canonical JSON-able scalar."""
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return str(value)


def _record_to_dict(record: SweepRecord) -> Dict:
    """JSON-able form of a :class:`SweepRecord`."""
    return {
        "name": record.name,
        "sweep_label": record.sweep_label,
        "sweep_values": [float(v) for v in record.sweep_values],
        "traces": {key: [float(v) for v in values]
                   for key, values in sorted(record.traces.items())},
        "metadata": {str(k): str(v) for k, v in sorted(record.metadata.items())},
    }


def _record_from_dict(payload: Mapping) -> SweepRecord:
    """Inverse of :func:`_record_to_dict`."""
    return SweepRecord(
        name=str(payload["name"]),
        sweep_label=str(payload.get("sweep_label", "x")),
        sweep_values=np.asarray(payload.get("sweep_values", []), dtype=float),
        traces={key: np.asarray(values, dtype=float)
                for key, values in payload.get("traces", {}).items()},
        metadata=dict(payload.get("metadata", {})),
    )


__all__ = ["ResultTable", "ScenarioResult"]
