"""The scenario registry: named, runnable, documented workloads.

A :class:`Scenario` bundles a declarative :class:`ScenarioSpec` with the
compute function that interprets it and with its documentation (the paper
claim it reproduces and the outputs it promises).  The module-level registry
maps names to scenarios; :func:`run_scenario` is the one-call entry point the
examples, benchmarks, and CLI all share.

The canonical paper scenarios live in :mod:`repro.scenarios.library` and are
registered on first access, so importing :mod:`repro` stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ValidationError
from .engines import EngineContext
from .result import ScenarioResult
from .spec import ScenarioSpec

#: Compute-function signature: interpret the spec inside the engine context
#: and return the scenario's result.
ComputeFunction = Callable[[ScenarioSpec, EngineContext], ScenarioResult]


@dataclass(frozen=True)
class Scenario:
    """A registered workload: spec + compute function + documentation.

    Parameters
    ----------
    spec:
        The canonical spec (callers may override the engine per run).
    compute:
        Function that interprets the spec and produces the result.
    title:
        One-line human title (shown by ``repro list``).
    claim:
        The paper claim the scenario reproduces.
    expected:
        One-line descriptions of the expected outputs (shown by
        ``repro describe`` and ``docs/scenarios.md``).
    supported_engines:
        Engines the compute function genuinely dispatches over (scenarios
        whose compute routes through
        :meth:`~repro.scenarios.engines.EngineContext` methods).  ``None``
        (default) means the scenario is pinned to its spec's engine: the
        runner then rejects engine overrides instead of mislabelling a
        result with an engine that never ran.
    """

    spec: ScenarioSpec
    compute: ComputeFunction
    title: str = ""
    claim: str = ""
    expected: Tuple[str, ...] = field(default_factory=tuple)
    supported_engines: Optional[Tuple[str, ...]] = None

    @property
    def name(self) -> str:
        """Registry name (the spec's name)."""
        return self.spec.name

    def allowed_engines(self) -> Tuple[str, ...]:
        """The engine values a run of this scenario may request."""
        if self.supported_engines is not None:
            return self.supported_engines
        return (self.spec.engine,)


_REGISTRY: Dict[str, Scenario] = {}
_LIBRARY_LOADED = False


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (idempotent re-registration allowed)."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def _ensure_library() -> None:
    """Import the canonical library on first registry access.

    The loaded flag is set only after a *successful* import, so a failing
    library import raises its real error on every access instead of leaving
    later callers with a silently empty registry.
    """
    global _LIBRARY_LOADED
    if not _LIBRARY_LOADED:
        from . import library  # noqa: F401  (registers on import)
        _LIBRARY_LOADED = True


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    _ensure_library()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{scenario_names()}") from None


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    _ensure_library()
    return sorted(_REGISTRY)


def iter_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by name."""
    _ensure_library()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_scenario(name: str, engine: Optional[str] = None,
                 use_cache: bool = True,
                 cache_dir=None, log=None) -> ScenarioResult:
    """Run one registered scenario end-to-end (the shared entry point).

    Parameters
    ----------
    name:
        Registered scenario name.
    engine:
        Optional engine override (changes the cache identity).
    use_cache:
        Serve/store through the content-hash result cache (default).
    cache_dir:
        Cache directory override (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro/scenarios``).
    log:
        Progress callback receiving one-line strings.

    Returns
    -------
    ScenarioResult
        The computed (or cache-served) result.
    """
    from .runner import ScenarioRunner

    runner = ScenarioRunner(use_cache=use_cache, cache_dir=cache_dir, log=log)
    return runner.run(name, engine=engine)


__all__ = ["ComputeFunction", "Scenario", "get_scenario", "iter_scenarios",
           "register_scenario", "run_scenario", "scenario_names"]
