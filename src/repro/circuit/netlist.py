"""The :class:`Circuit` container: nodes plus elements.

A :class:`Circuit` is a purely *descriptive* object — it knows nothing about
simulation.  The Monte-Carlo simulator, the master-equation solver and the
analysis helpers all consume the same :class:`Circuit` instance, which is how
the package realises the paper's call for "a combination of both simulator
types": one netlist, several engines.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..constants import E_CHARGE
from ..errors import CircuitError
from .elements import Capacitor, ChargeTrap, Element, TunnelJunction, VoltageSource
from .nodes import GROUND_NAME, Node, NodeKind, make_ground


class Circuit:
    """A single-electron circuit netlist.

    The ground node (named ``"gnd"``) always exists.  Islands and voltage
    nodes are added explicitly or implicitly (adding a voltage source to an
    unknown node creates that node as a source node; junctions and capacitors
    require their terminals to exist already, to catch typos early).

    Examples
    --------
    A single-electron transistor::

        circuit = Circuit("set")
        circuit.add_island("island")
        circuit.add_voltage_source("VD", "drain", 1e-3)
        circuit.add_voltage_source("VG", "gate", 0.0)
        circuit.add_junction("J1", "drain", "island", capacitance=1e-18,
                             resistance=1e5)
        circuit.add_junction("J2", "island", "gnd", capacitance=1e-18,
                             resistance=1e5)
        circuit.add_capacitor("CG", "gate", "island", capacitance=2e-18)
    """

    def __init__(self, name: str = "circuit") -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(f"circuit name must be a non-empty string, got {name!r}")
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._elements: Dict[str, Element] = {}
        #: Monotonic counter bumped whenever a source voltage changes.  The
        #: simulation engines key their cached source-voltage vectors on it so
        #: a gate sweep invalidates in O(1) without re-reading every node.
        self.bias_version: int = 0
        #: Monotonic counter bumped whenever an island offset charge changes.
        self.charge_version: int = 0
        ground = make_ground()
        self._nodes[ground.name] = ground

    # ------------------------------------------------------------------ nodes

    @property
    def ground(self) -> Node:
        """The ground node."""
        return self._nodes[GROUND_NAME]

    def add_island(self, name: str, offset_charge: float = 0.0) -> Node:
        """Add a Coulomb island.

        Parameters
        ----------
        name:
            Unique node name.
        offset_charge:
            Background (offset) charge in coulomb.
        """
        self._check_new_node_name(name)
        node = Node(name, NodeKind.ISLAND, offset_charge=offset_charge)
        self._nodes[name] = node
        self._reindex_islands()
        self.charge_version += 1
        return node

    def add_source_node(self, name: str, voltage: float = 0.0) -> Node:
        """Add a node whose potential is fixed (without a named source element)."""
        self._check_new_node_name(name)
        node = Node(name, NodeKind.SOURCE, voltage=float(voltage))
        self._nodes[name] = node
        self.bias_version += 1
        return node

    def _check_new_node_name(self, name: str) -> None:
        if name in self._nodes:
            raise CircuitError(f"node {name!r} already exists in circuit {self.name!r}")
        if name == GROUND_NAME:
            raise CircuitError("the ground node exists implicitly and cannot be re-added")

    def _reindex_islands(self) -> None:
        for index, island in enumerate(self.islands()):
            island.index = index

    def node(self, name: str) -> Node:
        """Return the node called ``name`` or raise :class:`CircuitError`."""
        try:
            return self._nodes[name]
        except KeyError:
            raise CircuitError(
                f"unknown node {name!r} in circuit {self.name!r}; "
                f"known nodes: {sorted(self._nodes)}"
            ) from None

    def has_node(self, name: str) -> bool:
        """Whether a node called ``name`` exists."""
        return name in self._nodes

    def nodes(self) -> List[Node]:
        """All nodes, ground first, then in insertion order."""
        return list(self._nodes.values())

    def islands(self) -> List[Node]:
        """All island nodes in insertion order."""
        return [node for node in self._nodes.values() if node.is_island]

    def source_nodes(self) -> List[Node]:
        """All fixed-potential nodes (including ground) in insertion order."""
        return [node for node in self._nodes.values() if node.is_source]

    @property
    def island_count(self) -> int:
        """Number of Coulomb islands."""
        return sum(1 for node in self._nodes.values() if node.is_island)

    # ----------------------------------------------------------- offset charge

    def set_offset_charge(self, island: str, offset_charge: float) -> None:
        """Set the background (offset) charge of an island, in coulomb."""
        node = self.node(island)
        if not node.is_island:
            raise CircuitError(
                f"offset charge can only be set on islands, {island!r} is a "
                f"{node.kind.value} node"
            )
        node.offset_charge = float(offset_charge)
        self.charge_version += 1

    def set_offset_charge_in_e(self, island: str, fraction: float) -> None:
        """Set the background charge of an island as a fraction of ``e``."""
        self.set_offset_charge(island, fraction * E_CHARGE)

    def offset_charges(self) -> Dict[str, float]:
        """Mapping island name -> offset charge in coulomb."""
        return {node.name: node.offset_charge for node in self.islands()}

    # --------------------------------------------------------------- elements

    def _add_element(self, element: Element) -> Element:
        if element.name in self._elements:
            raise CircuitError(
                f"element {element.name!r} already exists in circuit {self.name!r}"
            )
        self._elements[element.name] = element
        return element

    def add_junction(self, name: str, node_a: str, node_b: str,
                     capacitance: float, resistance: float) -> TunnelJunction:
        """Add a tunnel junction between two existing nodes."""
        self.node(node_a)
        self.node(node_b)
        junction = TunnelJunction(name, node_a, node_b, float(capacitance),
                                  float(resistance))
        self._add_element(junction)
        return junction

    def add_capacitor(self, name: str, node_a: str, node_b: str,
                      capacitance: float) -> Capacitor:
        """Add an ideal capacitor between two existing nodes."""
        self.node(node_a)
        self.node(node_b)
        capacitor = Capacitor(name, node_a, node_b, float(capacitance))
        self._add_element(capacitor)
        return capacitor

    def add_voltage_source(self, name: str, node: str, voltage: float) -> VoltageSource:
        """Add a voltage source; creates ``node`` as a source node if needed."""
        if not self.has_node(node):
            self.add_source_node(node, voltage)
        else:
            existing = self.node(node)
            if existing.is_island:
                raise CircuitError(
                    f"voltage source {name!r} cannot drive island {node!r}; "
                    "islands are only reachable through junctions and capacitors"
                )
            if existing.kind is NodeKind.GROUND and voltage != 0.0:
                raise CircuitError("cannot bias the ground node away from 0 V")
            existing.voltage = float(voltage)
            self.bias_version += 1
        source = VoltageSource(name, node, float(voltage))
        self._add_element(source)
        return source

    def add_charge_trap(self, name: str, island: str, coupling: float,
                        capture_time: float, emission_time: float) -> ChargeTrap:
        """Add a bistable charge trap coupled to an existing island."""
        node = self.node(island)
        if not node.is_island:
            raise CircuitError(
                f"charge trap {name!r} must couple to an island, {island!r} is a "
                f"{node.kind.value} node"
            )
        trap = ChargeTrap(name, island, float(coupling), float(capture_time),
                          float(emission_time))
        self._add_element(trap)
        return trap

    def set_source_voltage(self, name_or_node: str, voltage: float) -> None:
        """Update the voltage of a source element (by name) or source node.

        Sweeping a gate or drain voltage is the bread-and-butter operation of
        every experiment in the paper, so both the element name and the node
        name are accepted.
        """
        element = self._elements.get(name_or_node)
        if isinstance(element, VoltageSource):
            node_name = element.node
            self._elements[name_or_node] = VoltageSource(element.name, node_name,
                                                         float(voltage))
            self._nodes[node_name].voltage = float(voltage)
            self.bias_version += 1
            return
        node = self.node(name_or_node)
        if not node.is_source:
            raise CircuitError(
                f"{name_or_node!r} is not a voltage source element or source node"
            )
        if node.kind is NodeKind.GROUND and voltage != 0.0:
            raise CircuitError("cannot bias the ground node away from 0 V")
        node.voltage = float(voltage)
        self.bias_version += 1
        for element_name, element in list(self._elements.items()):
            if isinstance(element, VoltageSource) and element.node == name_or_node:
                self._elements[element_name] = VoltageSource(element.name, element.node,
                                                             float(voltage))

    def element(self, name: str) -> Element:
        """Return the element called ``name`` or raise :class:`CircuitError`."""
        try:
            return self._elements[name]
        except KeyError:
            raise CircuitError(
                f"unknown element {name!r} in circuit {self.name!r}; "
                f"known elements: {sorted(self._elements)}"
            ) from None

    def has_element(self, name: str) -> bool:
        """Whether an element called ``name`` exists."""
        return name in self._elements

    def elements(self) -> List[Element]:
        """All elements in insertion order."""
        return list(self._elements.values())

    def junctions(self) -> List[TunnelJunction]:
        """All tunnel junctions in insertion order."""
        return [e for e in self._elements.values() if isinstance(e, TunnelJunction)]

    def capacitors(self) -> List[Capacitor]:
        """All ideal capacitors in insertion order."""
        return [e for e in self._elements.values() if isinstance(e, Capacitor)]

    def voltage_sources(self) -> List[VoltageSource]:
        """All voltage sources in insertion order."""
        return [e for e in self._elements.values() if isinstance(e, VoltageSource)]

    def charge_traps(self) -> List[ChargeTrap]:
        """All charge traps in insertion order."""
        return [e for e in self._elements.values() if isinstance(e, ChargeTrap)]

    def capacitive_elements(self) -> List[Element]:
        """All elements that contribute capacitance (junctions and capacitors)."""
        return [e for e in self._elements.values()
                if isinstance(e, (TunnelJunction, Capacitor))]

    # ------------------------------------------------------------- inspection

    def elements_at(self, node_name: str) -> List[Element]:
        """All junctions/capacitors with a terminal on ``node_name``."""
        self.node(node_name)
        attached: List[Element] = []
        for element in self._elements.values():
            if isinstance(element, (TunnelJunction, Capacitor)):
                if node_name in (element.node_a, element.node_b):
                    attached.append(element)
        return attached

    def total_capacitance(self, island: str) -> float:
        """Total capacitance attached to an island, in farad.

        This is the ``C_sigma`` that sets the charging energy ``e^2/(2 C_sigma)``
        and therefore the maximum operating temperature.
        """
        node = self.node(island)
        if not node.is_island:
            raise CircuitError(f"{island!r} is not an island")
        return sum(element.capacitance  # type: ignore[union-attr]
                   for element in self.elements_at(island))

    def source_voltages(self) -> Dict[str, float]:
        """Mapping source-node name -> voltage (includes ground at 0 V)."""
        return {node.name: node.voltage for node in self.source_nodes()}

    def bias_snapshot(self) -> Dict[str, float]:
        """Restorable snapshot of every non-ground source-node voltage.

        Sweep drivers take one snapshot before mutating the bias and hand it
        back to :meth:`restore_bias` in a ``finally`` block, so an exception
        anywhere in the sweep (including window rebuilds) cannot leave the
        circuit at a stray operating point.
        """
        return {node.name: node.voltage for node in self.source_nodes()
                if node.kind is not NodeKind.GROUND}

    def restore_bias(self, snapshot: Dict[str, float]) -> None:
        """Restore source-node voltages saved by :meth:`bias_snapshot`."""
        for node_name, voltage in snapshot.items():
            self.set_source_voltage(node_name, voltage)

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Return an independent copy of the circuit."""
        clone = Circuit(name or self.name)
        for node in self._nodes.values():
            if node.kind is NodeKind.GROUND:
                continue
            if node.is_island:
                clone.add_island(node.name, offset_charge=node.offset_charge)
            else:
                clone.add_source_node(node.name, voltage=node.voltage)
        for element in self._elements.values():
            if isinstance(element, TunnelJunction):
                clone.add_junction(element.name, element.node_a, element.node_b,
                                   element.capacitance, element.resistance)
            elif isinstance(element, Capacitor):
                clone.add_capacitor(element.name, element.node_a, element.node_b,
                                    element.capacitance)
            elif isinstance(element, VoltageSource):
                clone.add_voltage_source(element.name, element.node, element.voltage)
            elif isinstance(element, ChargeTrap):
                clone.add_charge_trap(element.name, element.island, element.coupling,
                                      element.capture_time, element.emission_time)
        return clone

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Circuit({self.name!r}, islands={self.island_count}, "
                f"junctions={len(self.junctions())}, "
                f"capacitors={len(self.capacitors())}, "
                f"sources={len(self.voltage_sources())})")
