"""Circuit elements of the single-electron description.

The orthodox-theory simulators (Monte Carlo and master equation) understand
four element classes:

* :class:`TunnelJunction` — a capacitance in parallel with a tunnel
  resistance; the only element through which electrons can hop.
* :class:`Capacitor` — an ideal capacitance; electrons cannot cross it, it
  only shapes the electrostatics (gates, coupling capacitors).
* :class:`VoltageSource` — fixes the potential of a source node with respect
  to ground.
* :class:`ChargeTrap` — a two-state defect capacitively coupled to an island.
  When occupied it adds a (fractional) image charge to the island; its random
  switching generates the random telegraph signal (RTS) exploited by the
  single-electron random-number generator and feared by single-electron logic.

Resistors and current sources belong to the continuous (SPICE-like) world and
live in :mod:`repro.compact`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import R_QUANTUM
from ..errors import CircuitError


@dataclass(frozen=True)
class Element:
    """Base class of all two-terminal single-electron circuit elements."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CircuitError(
                f"element name must be a non-empty string, got {self.name!r}"
            )


@dataclass(frozen=True)
class TunnelJunction(Element):
    """A tunnel junction between ``node_a`` and ``node_b``.

    Parameters
    ----------
    capacitance:
        Junction capacitance in farad (> 0).
    resistance:
        Tunnel resistance in ohm (> 0).  Orthodox theory requires it to be
        well above the resistance quantum ``h/e**2``; that requirement is
        checked by :func:`repro.circuit.validation.validate_circuit`, not
        here, so that deliberately pathological junctions can still be
        constructed for testing.
    """

    node_a: str
    node_b: str
    capacitance: float
    resistance: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_a == self.node_b:
            raise CircuitError(
                f"tunnel junction {self.name!r} connects node {self.node_a!r} to itself"
            )
        if self.capacitance <= 0.0:
            raise CircuitError(
                f"tunnel junction {self.name!r} must have positive capacitance, "
                f"got {self.capacitance!r}"
            )
        if self.resistance <= 0.0:
            raise CircuitError(
                f"tunnel junction {self.name!r} must have positive resistance, "
                f"got {self.resistance!r}"
            )

    @property
    def is_orthodox(self) -> bool:
        """Whether the junction resistance exceeds the resistance quantum."""
        return self.resistance > R_QUANTUM


@dataclass(frozen=True)
class Capacitor(Element):
    """An ideal capacitor between ``node_a`` and ``node_b`` (no tunnelling)."""

    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_a == self.node_b:
            raise CircuitError(
                f"capacitor {self.name!r} connects node {self.node_a!r} to itself"
            )
        if self.capacitance <= 0.0:
            raise CircuitError(
                f"capacitor {self.name!r} must have positive capacitance, "
                f"got {self.capacitance!r}"
            )


@dataclass(frozen=True)
class VoltageSource(Element):
    """An ideal voltage source fixing ``node`` at ``voltage`` volt above ground."""

    node: str
    voltage: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.voltage, (int, float)):
            raise CircuitError(
                f"voltage source {self.name!r} needs a numeric voltage, "
                f"got {self.voltage!r}"
            )


@dataclass(frozen=True)
class ChargeTrap(Element):
    """A bistable charge trap capacitively coupled to an island.

    A trap models a single defect that can capture one electron.  When
    occupied it shifts the effective offset charge of ``island`` by
    ``coupling`` (in coulomb, conventionally a fraction of ``e``).  The
    capture and emission times parameterise a two-state Markov process
    (random telegraph signal).

    Parameters
    ----------
    island:
        Name of the island the trap is coupled to.
    coupling:
        Offset-charge shift induced on the island when the trap is occupied,
        in coulomb.  May be negative.
    capture_time:
        Mean time (s) before an *empty* trap captures an electron.
    emission_time:
        Mean time (s) before an *occupied* trap emits its electron.
    """

    island: str
    coupling: float
    capture_time: float
    emission_time: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capture_time <= 0.0 or self.emission_time <= 0.0:
            raise CircuitError(
                f"charge trap {self.name!r} needs positive capture and emission times"
            )
        if self.coupling == 0.0:
            raise CircuitError(
                f"charge trap {self.name!r} has zero coupling and would have no effect"
            )

    @property
    def occupancy_probability(self) -> float:
        """Stationary probability that the trap is occupied."""
        rate_capture = 1.0 / self.capture_time
        rate_emission = 1.0 / self.emission_time
        return rate_capture / (rate_capture + rate_emission)
