"""Physical validity checks for single-electron circuits.

The orthodox theory the simulators rely on has prerequisites: every island
must be reachable through at least one tunnel junction (otherwise its electron
number can never change and it is really just a floating capacitor plate),
junction resistances must exceed the quantum of resistance, and the
capacitance matrix must be invertible.  :func:`validate_circuit` collects all
violations so a user sees every problem at once rather than one per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..constants import ORTHODOX_RESISTANCE_RATIO, R_QUANTUM
from ..errors import ValidationError
from .elements import Capacitor, TunnelJunction
from .netlist import Circuit


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_circuit`.

    ``errors`` are violations that make simulation meaningless;
    ``warnings`` are conditions under which the orthodox theory is stretched
    (for example a tunnel resistance below ten resistance quanta).
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Whether the circuit passed every hard check."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`ValidationError` listing every hard violation."""
        if self.errors:
            raise ValidationError(
                "invalid circuit:\n  - " + "\n  - ".join(self.errors)
            )


def validate_circuit(circuit: Circuit, strict: bool = False) -> ValidationReport:
    """Check a circuit for physical validity.

    Parameters
    ----------
    circuit:
        The circuit to check.
    strict:
        When true, orthodox-theory warnings (junction resistance below
        ``10 R_K``) are promoted to errors.

    Returns
    -------
    ValidationReport
        Collected errors and warnings.  Use
        :meth:`ValidationReport.raise_if_invalid` to turn errors into an
        exception.
    """
    report = ValidationReport()

    islands = circuit.islands()
    junctions = circuit.junctions()

    if not islands:
        report.warnings.append(
            "circuit has no islands; only direct source-to-source tunnelling is possible"
        )

    if not junctions and islands:
        report.errors.append("circuit has islands but no tunnel junctions")

    # Islands must be attached to something, and to at least one junction to
    # have dynamics.
    for island in islands:
        attached = circuit.elements_at(island.name)
        if not attached:
            report.errors.append(f"island {island.name!r} is completely disconnected")
            continue
        junction_count = sum(1 for e in attached if isinstance(e, TunnelJunction))
        if junction_count == 0:
            report.warnings.append(
                f"island {island.name!r} has no tunnel junction; its electron number "
                "can never change (pure floating gate)"
            )

    # Junction sanity.
    for junction in junctions:
        ratio = junction.resistance / R_QUANTUM
        if ratio < 1.0:
            report.errors.append(
                f"junction {junction.name!r} resistance {junction.resistance:.3g} ohm is "
                f"below the resistance quantum {R_QUANTUM:.3g} ohm; orthodox theory "
                "does not apply"
            )
        elif ratio < ORTHODOX_RESISTANCE_RATIO:
            message = (
                f"junction {junction.name!r} resistance is only {ratio:.2f} R_K; "
                f"orthodox theory prefers at least {ORTHODOX_RESISTANCE_RATIO:.0f} R_K"
            )
            if strict:
                report.errors.append(message)
            else:
                report.warnings.append(message)

    # Source nodes should carry a voltage source element (otherwise their
    # voltage silently defaults to the last value set, which is error prone).
    driven = {source.node for source in circuit.voltage_sources()}
    for node in circuit.source_nodes():
        if node.kind.value == "ground":
            continue
        if node.name not in driven:
            report.warnings.append(
                f"source node {node.name!r} has no voltage source element; "
                f"using its stored voltage {node.voltage:.6g} V"
            )

    # Capacitors with both terminals on source nodes are inert.
    for capacitor in circuit.capacitors():
        node_a = circuit.node(capacitor.node_a)
        node_b = circuit.node(capacitor.node_b)
        if node_a.is_source and node_b.is_source:
            report.warnings.append(
                f"capacitor {capacitor.name!r} connects two fixed-potential nodes and "
                "has no effect on the single-electron dynamics"
            )

    # Traps must reference islands (already enforced at construction, but a
    # circuit assembled by hand from dataclasses could bypass that).
    for trap in circuit.charge_traps():
        if not circuit.has_node(trap.island) or not circuit.node(trap.island).is_island:
            report.errors.append(
                f"charge trap {trap.name!r} references {trap.island!r}, which is not an island"
            )

    return report


def assert_valid(circuit: Circuit, strict: bool = False) -> None:
    """Validate ``circuit`` and raise :class:`ValidationError` on any error."""
    validate_circuit(circuit, strict=strict).raise_if_invalid()


__all__ = ["ValidationReport", "validate_circuit", "assert_valid"]
