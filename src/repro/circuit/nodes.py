"""Circuit nodes.

A single-electron circuit distinguishes two kinds of electrical nodes:

* **Islands** — conducting regions connected to the rest of the circuit only
  through tunnel junctions and capacitors.  The number of excess electrons on
  an island is a discrete degree of freedom; it changes only through tunnel
  events.  Each island can additionally carry a *fractional* offset (random
  background) charge ``q0``, the central villain of the paper.
* **Source nodes** — nodes whose potential is fixed by an ideal voltage
  source.  The ground node is a source node held at 0 V.

The compact (SPICE-like) solver in :mod:`repro.compact` uses its own
continuous-voltage node abstraction; this module only serves the
single-electron (Monte-Carlo / master-equation) description.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import CircuitError

#: Reserved name of the ground node.
GROUND_NAME = "gnd"


class NodeKind(enum.Enum):
    """Kind of a circuit node."""

    #: A Coulomb island: integer electron number + fractional offset charge.
    ISLAND = "island"

    #: A node whose potential is imposed by an ideal voltage source.
    SOURCE = "source"

    #: The ground node (a source node permanently at 0 V).
    GROUND = "ground"


@dataclass
class Node:
    """A node of a single-electron circuit.

    Parameters
    ----------
    name:
        Unique node name within a circuit.
    kind:
        One of :class:`NodeKind`.
    voltage:
        Fixed potential in volt.  Only meaningful for source/ground nodes.
    offset_charge:
        Background (offset) charge in coulomb.  Only meaningful for islands.
        Conventionally a fraction of the elementary charge.
    """

    name: str
    kind: NodeKind
    voltage: float = 0.0
    offset_charge: float = 0.0
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CircuitError(f"node name must be a non-empty string, got {self.name!r}")
        if self.kind is NodeKind.GROUND and self.voltage != 0.0:
            raise CircuitError("the ground node must be at 0 V")
        if self.kind is not NodeKind.ISLAND and self.offset_charge != 0.0:
            raise CircuitError(
                f"offset charge is only meaningful on islands, not on {self.kind.value} "
                f"node {self.name!r}"
            )

    @property
    def is_island(self) -> bool:
        """Whether this node is a Coulomb island."""
        return self.kind is NodeKind.ISLAND

    @property
    def is_source(self) -> bool:
        """Whether this node has a fixed potential (source or ground)."""
        return self.kind in (NodeKind.SOURCE, NodeKind.GROUND)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_island:
            return f"Node({self.name!r}, island, q0={self.offset_charge:.3e} C)"
        return f"Node({self.name!r}, {self.kind.value}, V={self.voltage:.6g} V)"


def make_ground() -> Node:
    """Create the canonical ground node."""
    return Node(GROUND_NAME, NodeKind.GROUND, voltage=0.0)
