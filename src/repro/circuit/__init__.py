"""Single-electron circuit description: nodes, elements, netlists, parsing."""

from .elements import Capacitor, ChargeTrap, Element, TunnelJunction, VoltageSource
from .netlist import Circuit
from .nodes import GROUND_NAME, Node, NodeKind
from .parser import parse_netlist, parse_value, write_netlist
from .validation import ValidationReport, assert_valid, validate_circuit

__all__ = [
    "Capacitor",
    "ChargeTrap",
    "Circuit",
    "Element",
    "GROUND_NAME",
    "Node",
    "NodeKind",
    "TunnelJunction",
    "ValidationReport",
    "VoltageSource",
    "assert_valid",
    "parse_netlist",
    "parse_value",
    "validate_circuit",
    "write_netlist",
]
