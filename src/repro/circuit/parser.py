"""Text netlist parser and writer.

The format is deliberately close to SPICE decks and to the input decks of
dedicated single-electron simulators such as SIMON, so circuits can be kept in
version-controlled text files::

    * A single-electron transistor
    .circuit set
    island dot
    vsource VD drain  1mV
    vsource VG gate   0V
    junction J1 drain dot  c=1aF  r=100kOhm
    junction J2 dot   gnd  c=1aF  r=100kOhm
    cap      CG gate  dot  c=2aF
    offset   dot 0.25e
    trap     T1 dot coupling=0.1e capture=1us emission=2us
    .end

Lines starting with ``*`` or ``#`` are comments.  Values accept engineering
suffixes (``aF``, ``fF``, ``kOhm``, ``mV``, ``us`` ...) and charges may be
given in units of the elementary charge with an ``e`` suffix.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..constants import E_CHARGE
from ..errors import NetlistParseError
from .elements import Capacitor, ChargeTrap, TunnelJunction, VoltageSource
from .netlist import Circuit

# Multipliers for engineering suffixes.  Longest suffixes must be matched
# first, which the regex alternation below takes care of by ordering.
_UNIT_SCALES: Dict[str, float] = {
    # capacitance
    "zf": 1e-21, "af": 1e-18, "ff": 1e-15, "pf": 1e-12, "nf": 1e-9, "uf": 1e-6,
    "f": 1.0,
    # resistance
    "gohm": 1e9, "mohm_r": 1e6, "kohm": 1e3, "ohm": 1.0,
    # voltage
    "kv": 1e3, "v": 1.0, "mv": 1e-3, "uv": 1e-6, "nv": 1e-9,
    # time
    "s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9, "ps": 1e-12, "fs": 1e-15,
    # charge
    "c": 1.0, "e": E_CHARGE,
    # current
    "a": 1.0, "ma": 1e-3, "ua": 1e-6, "na": 1e-9, "pa": 1e-12,
    # temperature / bare numbers
    "k": 1e3,
}

_VALUE_RE = re.compile(
    r"^\s*([+-]?\d+(?:\.\d*)?(?:[eE][+-]?\d+)?)\s*([a-zA-Z]*)\s*$"
)


def parse_value(text: str) -> float:
    """Parse a numeric value with an optional engineering-unit suffix.

    ``"1aF"`` -> ``1e-18``, ``"100kOhm"`` -> ``1e5``, ``"0.25e"`` -> charge in
    coulomb, ``"5mV"`` -> ``5e-3``, plain numbers pass through unchanged.
    """
    match = _VALUE_RE.match(text)
    if match is None:
        raise NetlistParseError(f"cannot parse value {text!r}")
    number = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return number
    # Resistance "MOhm" clashes with millivolt-style prefixes once lowered, so
    # treat "mohm" explicitly as mega-ohm (SPICE convention "meg" also works).
    if suffix == "mohm" or suffix == "megohm" or suffix == "meg":
        return number * 1e6
    if suffix in _UNIT_SCALES:
        return number * _UNIT_SCALES[suffix]
    raise NetlistParseError(f"unknown unit suffix {match.group(2)!r} in {text!r}")


def _parse_keyword_values(tokens: List[str], line_number: int,
                          line: str) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for token in tokens:
        if "=" not in token:
            raise NetlistParseError(
                f"expected key=value, got {token!r}", line_number, line
            )
        key, _, raw = token.partition("=")
        key = key.strip().lower()
        try:
            values[key] = parse_value(raw)
        except NetlistParseError as exc:
            raise NetlistParseError(str(exc), line_number, line) from None
    return values


def _require(values: Dict[str, float], keys: Tuple[str, ...], what: str,
             line_number: int, line: str) -> float:
    for key in keys:
        if key in values:
            return values[key]
    raise NetlistParseError(
        f"{what} requires one of the parameters {keys}", line_number, line
    )


def parse_netlist(text: str) -> Circuit:
    """Parse a netlist string into a :class:`Circuit`."""
    circuit: Optional[Circuit] = None
    pending_name = "circuit"
    ended = False

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("*", 1)[0].split("#", 1)[0].strip() \
            if not raw_line.lstrip().startswith(("*", "#")) else ""
        if not line:
            continue
        if ended:
            raise NetlistParseError("content after .end directive", line_number, raw_line)
        tokens = line.split()
        keyword = tokens[0].lower()

        if keyword == ".circuit":
            if circuit is not None:
                raise NetlistParseError("duplicate .circuit directive",
                                        line_number, raw_line)
            pending_name = tokens[1] if len(tokens) > 1 else "circuit"
            circuit = Circuit(pending_name)
            continue
        if keyword == ".end":
            ended = True
            continue

        if circuit is None:
            circuit = Circuit(pending_name)

        try:
            _dispatch_statement(circuit, keyword, tokens, line_number, raw_line)
        except NetlistParseError:
            raise
        except Exception as exc:  # re-wrap circuit errors with line context
            raise NetlistParseError(str(exc), line_number, raw_line) from exc

    if circuit is None:
        raise NetlistParseError("netlist contains no statements")
    return circuit


def _dispatch_statement(circuit: Circuit, keyword: str, tokens: List[str],
                        line_number: int, raw_line: str) -> None:
    if keyword == "island":
        if len(tokens) < 2:
            raise NetlistParseError("island requires a name", line_number, raw_line)
        name = tokens[1]
        values = _parse_keyword_values(tokens[2:], line_number, raw_line)
        circuit.add_island(name, offset_charge=values.get("q0", 0.0))
        return

    if keyword in ("vsource", "v"):
        if len(tokens) < 4:
            raise NetlistParseError(
                "vsource requires: vsource NAME NODE VOLTAGE", line_number, raw_line
            )
        circuit.add_voltage_source(tokens[1], tokens[2], parse_value(tokens[3]))
        return

    if keyword in ("junction", "j"):
        if len(tokens) < 4:
            raise NetlistParseError(
                "junction requires: junction NAME NODE_A NODE_B c=... r=...",
                line_number, raw_line
            )
        values = _parse_keyword_values(tokens[4:], line_number, raw_line)
        capacitance = _require(values, ("c", "capacitance"), "junction",
                               line_number, raw_line)
        resistance = _require(values, ("r", "resistance"), "junction",
                              line_number, raw_line)
        circuit.add_junction(tokens[1], tokens[2], tokens[3], capacitance, resistance)
        return

    if keyword in ("cap", "capacitor", "c"):
        if len(tokens) < 4:
            raise NetlistParseError(
                "cap requires: cap NAME NODE_A NODE_B c=...", line_number, raw_line
            )
        values = _parse_keyword_values(tokens[4:], line_number, raw_line)
        capacitance = _require(values, ("c", "capacitance"), "capacitor",
                               line_number, raw_line)
        circuit.add_capacitor(tokens[1], tokens[2], tokens[3], capacitance)
        return

    if keyword == "offset":
        if len(tokens) < 3:
            raise NetlistParseError(
                "offset requires: offset ISLAND CHARGE", line_number, raw_line
            )
        circuit.set_offset_charge(tokens[1], parse_value(tokens[2]))
        return

    if keyword == "trap":
        if len(tokens) < 3:
            raise NetlistParseError(
                "trap requires: trap NAME ISLAND coupling=... capture=... emission=...",
                line_number, raw_line
            )
        values = _parse_keyword_values(tokens[3:], line_number, raw_line)
        coupling = _require(values, ("coupling", "q"), "trap", line_number, raw_line)
        capture = _require(values, ("capture", "tau_c"), "trap", line_number, raw_line)
        emission = _require(values, ("emission", "tau_e"), "trap",
                            line_number, raw_line)
        circuit.add_charge_trap(tokens[1], tokens[2], coupling, capture, emission)
        return

    raise NetlistParseError(f"unknown statement {keyword!r}", line_number, raw_line)


def write_netlist(circuit: Circuit) -> str:
    """Serialise a circuit back to the text netlist format.

    The output round-trips through :func:`parse_netlist`: parsing the written
    text yields an equivalent circuit (same nodes, elements and parameters).
    """
    lines: List[str] = [f".circuit {circuit.name}"]
    for island in circuit.islands():
        lines.append(f"island {island.name}")
    for source in circuit.voltage_sources():
        lines.append(f"vsource {source.name} {source.node} {source.voltage!r}")
    driven = {source.node for source in circuit.voltage_sources()}
    for node in circuit.source_nodes():
        if node.kind.value != "ground" and node.name not in driven:
            lines.append(f"vsource V_{node.name} {node.name} {node.voltage!r}")
    for element in circuit.elements():
        if isinstance(element, TunnelJunction):
            lines.append(
                f"junction {element.name} {element.node_a} {element.node_b} "
                f"c={element.capacitance!r} r={element.resistance!r}"
            )
        elif isinstance(element, Capacitor):
            lines.append(
                f"cap {element.name} {element.node_a} {element.node_b} "
                f"c={element.capacitance!r}"
            )
        elif isinstance(element, ChargeTrap):
            lines.append(
                f"trap {element.name} {element.island} coupling={element.coupling!r} "
                f"capture={element.capture_time!r} emission={element.emission_time!r}"
            )
    for island in circuit.islands():
        if island.offset_charge != 0.0:
            lines.append(f"offset {island.name} {island.offset_charge!r}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


__all__ = ["parse_value", "parse_netlist", "write_netlist"]
