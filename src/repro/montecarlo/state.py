"""Mutable simulation state of the kinetic Monte-Carlo engine.

Two state representations coexist:

* :class:`SimulationState` — one trajectory, the original scalar layout
  (electron vector, per-junction transfer dict).  It remains the reference
  representation; every ensemble observable can be projected back onto it.
* :class:`EnsembleState` — ``R`` independent replicas stored as 2-D arrays
  (``(R, islands)`` electron counts, ``(R, junctions)`` transfer tallies,
  per-replica clocks and event counters), so the kernel can advance all
  replicas per macro-step with batched NumPy operations
  (:meth:`~repro.montecarlo.kernel.MonteCarloKernel.step_ensemble`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..core.energy import EnergyModel
from ..errors import SimulationError


@dataclass
class SimulationState:
    """Everything that evolves during a kinetic Monte-Carlo run.

    Attributes
    ----------
    time:
        Simulated time in seconds.
    electrons:
        Electron-number vector over the circuit's islands.
    trap_occupancy:
        Occupation (True = holds an electron) of every charge trap, keyed by
        trap name.
    event_count:
        Total number of executed events (tunnelling + trap transitions).
    electron_transfers:
        Net number of electrons that crossed each junction from ``node_a`` to
        ``node_b`` (signed), keyed by junction name.  Dividing by the elapsed
        time and multiplying by ``-e`` yields the average conventional
        current.
    """

    time: float
    electrons: np.ndarray
    trap_occupancy: Dict[str, bool] = field(default_factory=dict)
    event_count: int = 0
    electron_transfers: Dict[str, float] = field(default_factory=dict)

    def copy(self) -> "SimulationState":
        """An independent snapshot of the state."""
        return SimulationState(
            time=self.time,
            electrons=self.electrons.copy(),
            trap_occupancy=dict(self.trap_occupancy),
            event_count=self.event_count,
            electron_transfers=dict(self.electron_transfers),
        )

    def electron_tuple(self) -> tuple:
        """The electron-number vector as a plain tuple of ints (hashable)."""
        return tuple(int(value) for value in self.electrons)


def resolve_junction_column(junction_names: Tuple[str, ...],
                            junction_name: str,
                            exception: type = SimulationError) -> int:
    """Column index of a junction in an ensemble transfer array.

    Shared by :class:`EnsembleState` and
    :class:`~repro.montecarlo.observables.EnsembleResult` so the lookup (and
    its error message) cannot drift between the two; ``exception`` lets each
    caller keep its conventional error type.
    """
    try:
        return junction_names.index(junction_name)
    except ValueError:
        raise exception(
            f"unknown junction {junction_name!r}; known: "
            f"{sorted(junction_names)}"
        ) from None


@dataclass
class EnsembleState:
    """``R`` independent Monte-Carlo replicas stored as batched arrays.

    All replicas share one circuit, one bias point and one kernel; only the
    stochastic degrees of freedom are replicated.  The layout is
    structure-of-arrays so a macro-step touches each field once:

    Attributes
    ----------
    times:
        ``(R,)`` simulated time of each replica, in seconds.
    electrons:
        ``(R, islands)`` electron-number vectors (``int64``).
    event_counts:
        ``(R,)`` executed events per replica.
    electron_transfers:
        ``(R, junctions)`` net signed electron counts through each junction,
        columns ordered as :attr:`junction_names`.
    junction_names:
        Junction order of the transfer columns (the circuit's junction
        order).
    cursor:
        Opaque per-kernel bookkeeping (configuration slots and memo-entry
        links) owned by :meth:`MonteCarloKernel.step_ensemble`; reset to
        ``None`` by :meth:`copy`.
    """

    times: np.ndarray
    electrons: np.ndarray
    event_counts: np.ndarray
    electron_transfers: np.ndarray
    junction_names: Tuple[str, ...]
    cursor: Optional[object] = None

    @property
    def replica_count(self) -> int:
        """Number of replicas ``R``."""
        return int(self.times.size)

    def junction_column(self, junction_name: str) -> int:
        """Column index of a junction in :attr:`electron_transfers`."""
        return resolve_junction_column(self.junction_names, junction_name)

    def replica_state(self, replica: int) -> SimulationState:
        """Project one replica onto the scalar :class:`SimulationState` layout."""
        transfers = {name: float(self.electron_transfers[replica, column])
                     for column, name in enumerate(self.junction_names)}
        return SimulationState(
            time=float(self.times[replica]),
            electrons=self.electrons[replica].copy(),
            trap_occupancy={},
            event_count=int(self.event_counts[replica]),
            electron_transfers=transfers,
        )

    def copy(self) -> "EnsembleState":
        """An independent snapshot of every replica (kernel cursor dropped)."""
        return EnsembleState(
            times=self.times.copy(),
            electrons=self.electrons.copy(),
            event_counts=self.event_counts.copy(),
            electron_transfers=self.electron_transfers.copy(),
            junction_names=self.junction_names,
        )


def initial_ensemble(circuit: Circuit, model: Optional[EnergyModel] = None,
                     replicas: int = 1,
                     electrons: Optional[Sequence[int]] = None) -> EnsembleState:
    """Build the starting :class:`EnsembleState` of an ensemble run.

    Every replica starts from the same configuration — the zero-temperature
    ground state unless ``electrons`` is given as a single configuration
    (broadcast to all replicas) or as an ``(R, islands)`` array of
    per-replica configurations.  Circuits with charge traps are rejected:
    per-replica trap occupation would break the shared offset-charge vector
    the batched kernel relies on (use the scalar path for telegraph-noise
    studies).
    """
    if replicas < 1:
        raise SimulationError(f"need at least 1 replica, got {replicas!r}")
    if circuit.charge_traps():
        raise SimulationError(
            "ensemble simulation does not support charge traps; "
            "use the scalar SimulationState path for telegraph noise"
        )
    if model is None:
        model = EnergyModel(circuit)
    if electrons is None:
        base = model.ground_state()
        stacked = np.tile(np.asarray(base, dtype=np.int64), (replicas, 1))
    else:
        array = np.asarray(electrons, dtype=np.int64)
        if array.ndim == 1:
            stacked = np.tile(array, (replicas, 1))
        elif array.ndim == 2 and array.shape[0] == replicas:
            stacked = array.copy()
        else:
            raise SimulationError(
                f"electrons must be a single configuration or an "
                f"({replicas}, islands) array, got shape {array.shape}"
            )
    if stacked.shape[1] != model.island_count:
        raise SimulationError(
            f"electron vectors must have length {model.island_count}, "
            f"got {stacked.shape[1]}"
        )
    junction_names = tuple(junction.name for junction in circuit.junctions())
    return EnsembleState(
        times=np.zeros(replicas, dtype=float),
        electrons=np.ascontiguousarray(stacked),
        event_counts=np.zeros(replicas, dtype=np.int64),
        electron_transfers=np.zeros((replicas, len(junction_names)),
                                    dtype=float),
        junction_names=junction_names,
    )


def initial_state(circuit: Circuit, model: Optional[EnergyModel] = None,
                  electrons: Optional[np.ndarray] = None) -> SimulationState:
    """Build the starting state of a simulation.

    Electron numbers default to the zero-temperature ground state; traps start
    in their more probable stationary state so short runs are not biased by an
    unlikely initial trap configuration.
    """
    if model is None:
        model = EnergyModel(circuit)
    if electrons is None:
        electrons = model.ground_state()
    trap_occupancy = {
        trap.name: trap.occupancy_probability >= 0.5
        for trap in circuit.charge_traps()
    }
    transfers = {junction.name: 0.0 for junction in circuit.junctions()}
    return SimulationState(
        time=0.0,
        electrons=np.array(electrons, dtype=np.int64),
        trap_occupancy=trap_occupancy,
        event_count=0,
        electron_transfers=transfers,
    )


__all__ = ["EnsembleState", "SimulationState", "initial_ensemble",
           "initial_state", "resolve_junction_column"]
