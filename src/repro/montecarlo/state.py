"""Mutable simulation state of the kinetic Monte-Carlo engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..circuit.netlist import Circuit
from ..core.energy import EnergyModel


@dataclass
class SimulationState:
    """Everything that evolves during a kinetic Monte-Carlo run.

    Attributes
    ----------
    time:
        Simulated time in seconds.
    electrons:
        Electron-number vector over the circuit's islands.
    trap_occupancy:
        Occupation (True = holds an electron) of every charge trap, keyed by
        trap name.
    event_count:
        Total number of executed events (tunnelling + trap transitions).
    electron_transfers:
        Net number of electrons that crossed each junction from ``node_a`` to
        ``node_b`` (signed), keyed by junction name.  Dividing by the elapsed
        time and multiplying by ``-e`` yields the average conventional
        current.
    """

    time: float
    electrons: np.ndarray
    trap_occupancy: Dict[str, bool] = field(default_factory=dict)
    event_count: int = 0
    electron_transfers: Dict[str, float] = field(default_factory=dict)

    def copy(self) -> "SimulationState":
        """An independent snapshot of the state."""
        return SimulationState(
            time=self.time,
            electrons=self.electrons.copy(),
            trap_occupancy=dict(self.trap_occupancy),
            event_count=self.event_count,
            electron_transfers=dict(self.electron_transfers),
        )

    def electron_tuple(self) -> tuple:
        """The electron-number vector as a plain tuple of ints (hashable)."""
        return tuple(int(value) for value in self.electrons)


def initial_state(circuit: Circuit, model: Optional[EnergyModel] = None,
                  electrons: Optional[np.ndarray] = None) -> SimulationState:
    """Build the starting state of a simulation.

    Electron numbers default to the zero-temperature ground state; traps start
    in their more probable stationary state so short runs are not biased by an
    unlikely initial trap configuration.
    """
    if model is None:
        model = EnergyModel(circuit)
    if electrons is None:
        electrons = model.ground_state()
    trap_occupancy = {
        trap.name: trap.occupancy_probability >= 0.5
        for trap in circuit.charge_traps()
    }
    transfers = {junction.name: 0.0 for junction in circuit.junctions()}
    return SimulationState(
        time=0.0,
        electrons=np.array(electrons, dtype=np.int64),
        trap_occupancy=trap_occupancy,
        event_count=0,
        electron_transfers=transfers,
    )


__all__ = ["SimulationState", "initial_state"]
