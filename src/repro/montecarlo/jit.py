"""Compiled hot loop for the kinetic Monte-Carlo kernel.

The pure-numpy fast path in :mod:`repro.montecarlo.kernel` pays Python-level
dispatch once per event (scalar path) or once per macro-step (ensemble path).
This module compiles the *entire* inner loop — rate-table lookup, cumulative-
row event selection, configuration update, transfer accounting and time
accumulation — into a single native function that runs thousands of events
per call over the flat arrays exported by the kernel's
``_EnsembleCursor`` mirrors.

Backend ladder
--------------
Three interchangeable implementations of the same advance loop exist, picked
at first use (override with ``REPRO_JIT_BACKEND``):

``numba``
    :func:`numba.njit` with ``cache=True`` applied to the *same* Python
    source as the interpreted fallback, so the compiled artefact shares the
    tested control flow line for line.  Optional — the import is gated, not
    ``try/except``-ed at call sites.
``cc``
    A line-for-line C translation compiled on demand with the system C
    compiler (``cc``/``gcc``) into a per-source-hash shared library loaded
    through :mod:`ctypes`.  No third-party dependency; IEEE semantics are
    preserved (no ``-ffast-math``), which is what makes the seeded replay
    tests bit-exact.
``python``
    The interpreted loop itself.  Always available; slow, but the
    correctness reference for the re-entry protocol.

:func:`jit_compiled` reports whether a *native* backend (numba or cc) is
active — that is the availability flag the ``montecarlo-jit`` /
``ensemble-jit`` engines expose through capability introspection, so
``select_engine`` adopts them only when the speedup is real.

Re-entry protocol
-----------------
The native loop cannot call back into Python (for RNG block refills or
lazy successor linking), so it runs until it either finishes or needs the
driver, returning a status code:

========================  ====================================================
``STATUS_DONE``           budget exhausted (events or duration)
``STATUS_BLOCKED``        no event has a positive rate and no time budget
``STATUS_NEED_EXP``       the exponential block buffer is exhausted
``STATUS_NEED_UNIFORM``   the uniform block buffer is exhausted
``STATUS_NEED_LINK``      a (configuration, event) transition is unlinked
========================  ====================================================

All resumable state lives in two small register arrays (``ireg``/``freg``,
see the ``REG_*``/``FREG_*`` indices) so the driver can refill a buffer or
link a successor and re-enter mid-event.  Buffer refills happen exactly at
the consumption points, preserving the scalar path's interleaved draw order
from the shared generator — the property that makes an event-for-event
replay of :meth:`MonteCarloKernel.step` possible.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Status codes returned by every backend's advance loop.
STATUS_DONE = 0
STATUS_BLOCKED = 1
STATUS_NEED_EXP = 2
STATUS_NEED_UNIFORM = 3
STATUS_NEED_LINK = 4

#: ``ireg`` (int64) register layout shared by all backends.
REG_SLOT = 0            #: current cursor slot
REG_EVENTS = 1          #: events executed this run
REG_EXP_POS = 2         #: read position in the exponential block buffer
REG_UNI_POS = 3         #: read position in the uniform block buffer
REG_PENDING_EVENT = 4   #: selected-but-unapplied event index (-1: none)
REG_STALLS = 5          #: consecutive zero-progress iterations
IREG_SIZE = 6

#: ``freg`` (float64) register layout shared by all backends.
FREG_TIME = 0           #: simulated clock
FREG_PENDING_WAIT = 1   #: drawn-but-unapplied waiting time (-1.0: none)
FREG_START = 2          #: clock value at run start
FREG_DURATION = 3       #: time budget (+inf: unbounded)
FREG_SIZE = 4

#: Recognised ``REPRO_JIT_BACKEND`` values.
BACKEND_NUMBA = "numba"
BACKEND_CC = "cc"
BACKEND_PYTHON = "python"
_BACKENDS = (BACKEND_NUMBA, BACKEND_CC, BACKEND_PYTHON)

_ENV_BACKEND = "REPRO_JIT_BACKEND"
_ENV_CACHE_DIR = "REPRO_JIT_CACHE_DIR"

_INF = float("inf")


def _advance_py(totals, cumulative, last_selectable, successor_slots,
                transfer_matrix, transfers, exp_buf, uni_buf,
                ireg, freg, max_events):
    """Advance the trajectory until done or the driver is needed.

    One call executes as many events as the register state, the random
    block buffers and the linked successor matrix allow, mutating
    ``transfers``/``ireg``/``freg`` in place and returning a ``STATUS_*``
    code.  This is the canonical implementation: the numba backend compiles
    exactly this function and the C backend is its line-for-line
    translation, so all three consume the random stream identically.
    """
    n_events = cumulative.shape[1]
    n_junctions = transfer_matrix.shape[1]
    slot = ireg[REG_SLOT]
    events = ireg[REG_EVENTS]
    exp_pos = ireg[REG_EXP_POS]
    uni_pos = ireg[REG_UNI_POS]
    pending_event = ireg[REG_PENDING_EVENT]
    stalls = ireg[REG_STALLS]
    time = freg[FREG_TIME]
    wait = freg[FREG_PENDING_WAIT]
    start = freg[FREG_START]
    duration = freg[FREG_DURATION]
    exp_len = exp_buf.shape[0]
    uni_len = uni_buf.shape[0]
    bounded = duration < _INF
    status = STATUS_DONE
    while True:
        if wait < 0.0:
            # Start a new event: budget checks, blockade handling, waiting
            # time — the same order as the scalar run()/step() pair.
            if events >= max_events:
                status = STATUS_DONE
                break
            if bounded and time - start >= duration:
                status = STATUS_DONE
                break
            total = totals[slot]
            if total <= 0.0:
                if bounded:
                    remaining = duration - (time - start)
                    time = time + remaining
                    if time - start >= duration:
                        status = STATUS_DONE
                        break
                    stalls += 1
                    if stalls > 3:
                        status = STATUS_DONE
                        break
                    continue
                stalls += 1
                if stalls > 3:
                    status = STATUS_BLOCKED
                    break
                continue
            if exp_pos >= exp_len:
                status = STATUS_NEED_EXP
                break
            wait = exp_buf[exp_pos] / total
            exp_pos += 1
            if bounded:
                remaining = duration - (time - start)
                if wait > remaining:
                    # Censored: burn the remaining budget, apply nothing.
                    time = time + remaining
                    wait = -1.0
                    if time - start >= duration:
                        status = STATUS_DONE
                        break
                    stalls += 1
                    if stalls > 3:
                        status = STATUS_DONE
                        break
                    continue
        if pending_event < 0:
            if uni_pos >= uni_len:
                status = STATUS_NEED_UNIFORM
                break
            threshold = uni_buf[uni_pos] * totals[slot]
            uni_pos += 1
            # count(cumulative <= threshold) over the non-decreasing row is
            # exactly searchsorted(..., side="right"), clamped to the last
            # positive-rate event as in the scalar path.
            index = 0
            while index < n_events and cumulative[slot, index] <= threshold:
                index += 1
            last = last_selectable[slot]
            if index > last:
                index = last
        else:
            index = pending_event
            pending_event = -1
        successor = successor_slots[slot, index]
        if successor < 0:
            pending_event = index
            status = STATUS_NEED_LINK
            break
        time = time + wait
        for junction in range(n_junctions):
            transfers[junction] = transfers[junction] \
                + transfer_matrix[index, junction]
        slot = successor
        events += 1
        stalls = 0
        wait = -1.0
    ireg[REG_SLOT] = slot
    ireg[REG_EVENTS] = events
    ireg[REG_EXP_POS] = exp_pos
    ireg[REG_UNI_POS] = uni_pos
    ireg[REG_PENDING_EVENT] = pending_event
    ireg[REG_STALLS] = stalls
    freg[FREG_TIME] = time
    freg[FREG_PENDING_WAIT] = wait
    return status


# ----------------------------------------------------------------- C backend

#: Line-for-line C translation of :func:`_advance_py`.  Compiled without any
#: fast-math flag: IEEE double semantics must match numpy scalar arithmetic
#: exactly for the seeded replay tests to hold bit for bit.
_C_SOURCE = r"""
#include <math.h>

long long repro_mc_advance(
    const double *totals,
    const double *cumulative,
    const long long *last_selectable,
    const long long *successor_slots,
    const double *transfer_matrix,
    double *transfers,
    const double *exp_buf, long long exp_len,
    const double *uni_buf, long long uni_len,
    long long *ireg, double *freg,
    long long max_events, long long n_events, long long n_junctions)
{
    long long slot = ireg[0];
    long long events = ireg[1];
    long long exp_pos = ireg[2];
    long long uni_pos = ireg[3];
    long long pending_event = ireg[4];
    long long stalls = ireg[5];
    double time = freg[0];
    double wait = freg[1];
    double start = freg[2];
    double duration = freg[3];
    int bounded = isfinite(duration);
    long long status = 0;  /* DONE */
    for (;;) {
        if (wait < 0.0) {
            if (events >= max_events) { status = 0; break; }
            if (bounded && time - start >= duration) { status = 0; break; }
            double total = totals[slot];
            if (total <= 0.0) {
                if (bounded) {
                    double remaining = duration - (time - start);
                    time = time + remaining;
                    if (time - start >= duration) { status = 0; break; }
                    stalls += 1;
                    if (stalls > 3) { status = 0; break; }
                    continue;
                }
                stalls += 1;
                if (stalls > 3) { status = 1; break; }  /* BLOCKED */
                continue;
            }
            if (exp_pos >= exp_len) { status = 2; break; }  /* NEED_EXP */
            wait = exp_buf[exp_pos] / total;
            exp_pos += 1;
            if (bounded) {
                double remaining = duration - (time - start);
                if (wait > remaining) {
                    time = time + remaining;
                    wait = -1.0;
                    if (time - start >= duration) { status = 0; break; }
                    stalls += 1;
                    if (stalls > 3) { status = 0; break; }
                    continue;
                }
            }
        }
        long long index;
        if (pending_event < 0) {
            if (uni_pos >= uni_len) { status = 3; break; }  /* NEED_UNIFORM */
            double threshold = uni_buf[uni_pos] * totals[slot];
            uni_pos += 1;
            const double *row = cumulative + slot * n_events;
            index = 0;
            while (index < n_events && row[index] <= threshold) index += 1;
            long long last = last_selectable[slot];
            if (index > last) index = last;
        } else {
            index = pending_event;
            pending_event = -1;
        }
        long long successor = successor_slots[slot * n_events + index];
        if (successor < 0) {
            pending_event = index;
            status = 4;  /* NEED_LINK */
            break;
        }
        time = time + wait;
        const double *transfer_row = transfer_matrix + index * n_junctions;
        for (long long junction = 0; junction < n_junctions; junction++)
            transfers[junction] = transfers[junction]
                + transfer_row[junction];
        slot = successor;
        events += 1;
        stalls = 0;
        wait = -1.0;
    }
    ireg[0] = slot;
    ireg[1] = events;
    ireg[2] = exp_pos;
    ireg[3] = uni_pos;
    ireg[4] = pending_event;
    ireg[5] = stalls;
    freg[0] = time;
    freg[1] = wait;
    return status;
}
"""


def _cc_cache_dir() -> Path:
    """Directory holding compiled shared libraries, keyed by source hash."""
    override = os.environ.get(_ENV_CACHE_DIR)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return Path(base) / "repro-jit"


def _find_compiler() -> Optional[str]:
    """The system C compiler to use, or ``None`` when none is on PATH."""
    import shutil

    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _compile_cc_library() -> Optional[Path]:
    """Compile (or reuse) the shared library of the C advance loop.

    Returns the library path, or ``None`` when no compiler is available or
    the build fails — the caller then falls through to the next backend.
    """
    compiler = _find_compiler()
    if compiler is None:
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    for directory in (_cc_cache_dir(), Path(tempfile.gettempdir()) / "repro-jit"):
        library = directory / f"mc_advance_{digest}.so"
        if library.exists():
            return library
        try:
            directory.mkdir(parents=True, exist_ok=True)
            source = directory / f"mc_advance_{digest}.c"
            source.write_text(_C_SOURCE)
            scratch = directory / f".mc_advance_{digest}.{os.getpid()}.so"
            subprocess.run(
                [compiler, "-O2", "-fPIC", "-shared", "-o", str(scratch),
                 str(source), "-lm"],
                check=True, capture_output=True, timeout=120)
            os.replace(scratch, library)  # atomic against concurrent builds
            return library
        except (OSError, subprocess.SubprocessError):
            continue
    return None


def _load_cc_advance() -> Optional[Callable]:
    """Build, load, and wrap the C backend; ``None`` on any failure."""
    library_path = _compile_cc_library()
    if library_path is None:
        return None
    try:
        library = ctypes.CDLL(str(library_path))
        native = library.repro_mc_advance
    except (OSError, AttributeError):
        return None
    double_p = ctypes.POINTER(ctypes.c_double)
    int64_p = ctypes.POINTER(ctypes.c_longlong)
    int64 = ctypes.c_longlong
    native.restype = int64
    native.argtypes = [double_p, double_p, int64_p, int64_p, double_p,
                       double_p, double_p, int64, double_p, int64,
                       int64_p, double_p, int64, int64, int64]

    def advance(totals, cumulative, last_selectable, successor_slots,
                transfer_matrix, transfers, exp_buf, uni_buf,
                ireg, freg, max_events):
        """ctypes shim matching :func:`_advance_py`'s signature."""
        return int(native(
            totals.ctypes.data_as(double_p),
            cumulative.ctypes.data_as(double_p),
            last_selectable.ctypes.data_as(int64_p),
            successor_slots.ctypes.data_as(int64_p),
            transfer_matrix.ctypes.data_as(double_p),
            transfers.ctypes.data_as(double_p),
            exp_buf.ctypes.data_as(double_p), int64(exp_buf.shape[0]),
            uni_buf.ctypes.data_as(double_p), int64(uni_buf.shape[0]),
            ireg.ctypes.data_as(int64_p),
            freg.ctypes.data_as(double_p),
            int64(max_events), int64(cumulative.shape[1]),
            int64(transfer_matrix.shape[1])))

    return advance


def _load_numba_advance() -> Optional[Callable]:
    """Compile :func:`_advance_py` with numba; ``None`` when unavailable."""
    try:
        import numba
    except ImportError:
        return None
    try:
        return numba.njit(cache=True)(_advance_py)
    except Exception:  # pragma: no cover - defensive against numba quirks
        return None


# -------------------------------------------------------- backend resolution

_LOADERS: Dict[str, Callable[[], Optional[Callable]]] = {
    BACKEND_NUMBA: _load_numba_advance,
    BACKEND_CC: _load_cc_advance,
    BACKEND_PYTHON: lambda: _advance_py,
}

#: Resolved ``(name, callable)`` per requested backend (``None`` key = auto).
_resolved: Dict[Optional[str], Tuple[str, Callable]] = {}


def resolve_advance(backend: Optional[str] = None) -> Tuple[str, Callable]:
    """The advance loop of ``backend`` (default: the best available).

    Resolution order for the default request is numba, then the C backend,
    then the interpreted Python loop (which always succeeds), overridable
    globally through ``$REPRO_JIT_BACKEND``.  Results are cached per
    process, so repeated kernels share one compiled artefact.

    Parameters
    ----------
    backend:
        One of ``"numba"``, ``"cc"``, ``"python"``, or ``None`` for the
        environment-resolved default.

    Returns
    -------
    (name, callable):
        The backend that actually loaded and its advance function.

    Raises
    ------
    repro.errors.SimulationError
        For an unknown backend name, or when an explicitly requested
        native backend cannot be loaded.
    """
    from ..errors import SimulationError

    cached = _resolved.get(backend)
    if cached is not None:
        return cached
    request = backend
    if request is None:
        request = os.environ.get(_ENV_BACKEND) or None
    if request is not None and request not in _BACKENDS:
        raise SimulationError(
            f"unknown jit backend {request!r}; choose from {_BACKENDS}")
    candidates = (request,) if request is not None else (
        BACKEND_NUMBA, BACKEND_CC, BACKEND_PYTHON)
    for name in candidates:
        advance = _LOADERS[name]()
        if advance is not None:
            if request is None and name == BACKEND_PYTHON:
                # Auto-resolution exhausted every native backend: record the
                # degradation so operators see why the JIT engines are slow.
                from ..resilience.events import emit_degradation

                emit_degradation("jit.run_compiled", "fallback:python",
                                 "no native advance backend (numba/cc) "
                                 "could be loaded")
            _resolved[backend] = (name, advance)
            return name, advance
    raise SimulationError(
        f"jit backend {request!r} is not available in this environment "
        "(set REPRO_JIT_BACKEND=python for the interpreted fallback)")


def jit_backend() -> str:
    """Name of the advance-loop backend the default resolution picks."""
    return resolve_advance()[0]


def jit_compiled() -> bool:
    """Whether a *native* (numba or C) advance loop is active.

    This is the availability flag of the ``montecarlo-jit`` /
    ``ensemble-jit`` engines: with only the interpreted loop on offer the
    engines still work but advertise ``available=False`` so capability-based
    selection keeps preferring the numpy engines.
    """
    try:
        return jit_backend() != BACKEND_PYTHON
    except Exception:
        return False


def clear_backend_cache() -> None:
    """Forget resolved backends (tests flip ``REPRO_JIT_BACKEND`` at runtime)."""
    _resolved.clear()


__all__ = [
    "BACKEND_CC",
    "BACKEND_NUMBA",
    "BACKEND_PYTHON",
    "FREG_DURATION",
    "FREG_PENDING_WAIT",
    "FREG_SIZE",
    "FREG_START",
    "FREG_TIME",
    "IREG_SIZE",
    "REG_EVENTS",
    "REG_EXP_POS",
    "REG_PENDING_EVENT",
    "REG_SLOT",
    "REG_STALLS",
    "REG_UNI_POS",
    "STATUS_BLOCKED",
    "STATUS_DONE",
    "STATUS_NEED_EXP",
    "STATUS_NEED_LINK",
    "STATUS_NEED_UNIFORM",
    "clear_backend_cache",
    "jit_backend",
    "jit_compiled",
    "resolve_advance",
]
