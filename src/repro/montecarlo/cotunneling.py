"""Enumeration of co-tunnelling channels.

Inelastic co-tunnelling moves an electron coherently through two junctions
that share an island, even when both individual steps are forbidden by the
Coulomb blockade.  It dominates transport deep inside the blockade region and
is precisely the kind of "higher-order tunnelling effect" the paper notes is
missing from SPICE macro-models (§4).  The Monte-Carlo engine treats each
co-tunnelling channel as one composite event with the second-order rate of
:func:`repro.core.rates.cotunneling_rate`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..constants import E_CHARGE
from ..core.energy import EnergyModel, TunnelEvent
from .events import CotunnelCandidate


def enumerate_cotunnel_candidates(circuit: Circuit,
                                  model: EnergyModel) -> List[CotunnelCandidate]:
    """All ordered co-tunnelling channels of a circuit.

    A channel is an ordered pair of elementary events ``(first, second)``
    such that the first event deposits an electron on an island and the second
    event removes an electron from the *same* island through a *different*
    junction.  Both traversal directions of every junction pair are generated;
    energetically forbidden channels are simply assigned a zero rate at
    simulation time.
    """
    island_names = set(model.system.island_index)
    candidates: List[CotunnelCandidate] = []
    events = model.events()
    for first in events:
        target = first.target_node
        if target not in island_names:
            continue
        for second in events:
            if second.junction.name == first.junction.name:
                continue
            if second.source_node != target:
                continue
            candidates.append(CotunnelCandidate(first=first, second=second))
    return candidates


class CotunnelTable:
    """Precomputed index arrays that vectorize co-tunnelling rate evaluation.

    Every channel is an ordered pair of elementary events.  Because the
    elementary ``dF`` values of *all* events are already available as one
    vector (via :class:`~repro.core.energy.EventTable`), each channel's three
    energies reduce to gathers plus one precomputed cross term:

    * ``E1 = dF[first]`` — electron-first virtual state,
    * ``E2 = dF[second]`` — hole-first virtual state,
    * ``total = E1 + E2 + cross`` where
      ``cross = e (dphi_first[from2] - dphi_first[to2])`` corrects the second
      event's energy for the potential shift left by the first (island terms
      only; a source terminal contributes zero).

    ``delta_n``/``delta_phi`` are the composite update vectors of the channel.
    """

    def __init__(self, model: EnergyModel,
                 candidates: Sequence[CotunnelCandidate]) -> None:
        table = model.table
        index = {(event.junction.name, event.direction): k
                 for k, event in enumerate(table.events)}
        self.size = len(candidates)
        self.first_index = np.array(
            [index[(c.first.junction.name, c.first.direction)] for c in candidates],
            dtype=np.int64).reshape(self.size)
        self.second_index = np.array(
            [index[(c.second.junction.name, c.second.direction)] for c in candidates],
            dtype=np.int64).reshape(self.size)
        self.resistance_1 = table.resistance[self.first_index]
        self.resistance_2 = table.resistance[self.second_index]
        self.delta_n = table.delta_n[self.first_index] + table.delta_n[self.second_index]
        self.delta_phi = (table.delta_phi[self.first_index]
                          + table.delta_phi[self.second_index])

        cross = np.zeros(self.size)
        from_2 = table.from_island[self.second_index]
        to_2 = table.to_island[self.second_index]
        from_mask = from_2 >= 0
        to_mask = to_2 >= 0
        cross[from_mask] += E_CHARGE * table.delta_phi[
            self.first_index[from_mask], from_2[from_mask]]
        cross[to_mask] -= E_CHARGE * table.delta_phi[
            self.first_index[to_mask], to_2[to_mask]]
        self.cross = cross

    def channel_energies(self, delta_f: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(total, E1, E2)`` for every channel, given the elementary ``dF`` vector."""
        first = delta_f[self.first_index]
        second = delta_f[self.second_index]
        return first + second + self.cross, first, second


def intermediate_energies(model: EnergyModel, electrons, candidate: CotunnelCandidate,
                          voltages=None, offsets=None) -> Tuple[float, float]:
    """Energy costs of the two virtual intermediate states of a channel.

    Returns ``(E1, E2)`` where ``E1`` is the cost of executing the *first*
    elementary event from the initial configuration (electron briefly on the
    island) and ``E2`` the cost of executing the *second* elementary event
    first (hole briefly on the island).  Both must be positive for the
    co-tunnelling picture to apply; the rate function returns zero otherwise.
    """
    first_cost = model.free_energy_change(electrons, candidate.first,
                                          voltages, offsets)
    second_cost = model.free_energy_change(electrons, candidate.second,
                                           voltages, offsets)
    return first_cost, second_cost


__all__ = ["CotunnelTable", "enumerate_cotunnel_candidates", "intermediate_energies"]
