"""Enumeration of co-tunnelling channels.

Inelastic co-tunnelling moves an electron coherently through two junctions
that share an island, even when both individual steps are forbidden by the
Coulomb blockade.  It dominates transport deep inside the blockade region and
is precisely the kind of "higher-order tunnelling effect" the paper notes is
missing from SPICE macro-models (§4).  The Monte-Carlo engine treats each
co-tunnelling channel as one composite event with the second-order rate of
:func:`repro.core.rates.cotunneling_rate`.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..circuit.netlist import Circuit
from ..core.energy import EnergyModel, TunnelEvent
from .events import CotunnelCandidate


def enumerate_cotunnel_candidates(circuit: Circuit,
                                  model: EnergyModel) -> List[CotunnelCandidate]:
    """All ordered co-tunnelling channels of a circuit.

    A channel is an ordered pair of elementary events ``(first, second)``
    such that the first event deposits an electron on an island and the second
    event removes an electron from the *same* island through a *different*
    junction.  Both traversal directions of every junction pair are generated;
    energetically forbidden channels are simply assigned a zero rate at
    simulation time.
    """
    island_names = set(model.system.island_index)
    candidates: List[CotunnelCandidate] = []
    events = model.events()
    for first in events:
        target = first.target_node
        if target not in island_names:
            continue
        for second in events:
            if second.junction.name == first.junction.name:
                continue
            if second.source_node != target:
                continue
            candidates.append(CotunnelCandidate(first=first, second=second))
    return candidates


def intermediate_energies(model: EnergyModel, electrons, candidate: CotunnelCandidate,
                          voltages=None, offsets=None) -> Tuple[float, float]:
    """Energy costs of the two virtual intermediate states of a channel.

    Returns ``(E1, E2)`` where ``E1`` is the cost of executing the *first*
    elementary event from the initial configuration (electron briefly on the
    island) and ``E2`` the cost of executing the *second* elementary event
    first (hole briefly on the island).  Both must be positive for the
    co-tunnelling picture to apply; the rate function returns zero otherwise.
    """
    first_cost = model.free_energy_change(electrons, candidate.first,
                                          voltages, offsets)
    second_cost = model.free_energy_change(electrons, candidate.second,
                                           voltages, offsets)
    return first_cost, second_cost


__all__ = ["enumerate_cotunnel_candidates", "intermediate_energies"]
