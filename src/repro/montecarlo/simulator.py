"""User-facing kinetic Monte-Carlo simulator (the package's SIMON equivalent).

:class:`MonteCarloSimulator` runs transient trajectories and estimates
stationary currents for arbitrary single-electron circuits, with optional
co-tunnelling channels and background-charge traps.  It is the "detailed
Monte-Carlo simulator that captures all the necessary physics but is limited
in terms of circuit size" from the paper's §4; the complementary fast/compact
path is :mod:`repro.compact`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..circuit.validation import validate_circuit
from ..constants import E_CHARGE
from ..errors import SimulationError
from .kernel import MonteCarloKernel
from .observables import (
    CurrentEstimate,
    EventRecord,
    OccupationStatistics,
    TrajectoryResult,
    block_average,
)
from .state import SimulationState, initial_state


class MonteCarloSimulator:
    """Kinetic Monte-Carlo simulation of a single-electron circuit.

    Parameters
    ----------
    circuit:
        The circuit to simulate.  It is validated on construction; hard
        violations raise immediately so that a long run cannot silently
        produce nonsense.
    temperature:
        Temperature in kelvin.
    seed:
        Seed for the internal random generator (``None`` gives a fresh
        non-deterministic stream).
    include_cotunneling:
        Whether inelastic co-tunnelling channels are included.
    validate:
        Set to ``False`` to skip circuit validation (used by tests that
        deliberately build pathological circuits).
    """

    def __init__(self, circuit: Circuit, temperature: float,
                 seed: Optional[int] = None,
                 include_cotunneling: bool = False,
                 validate: bool = True) -> None:
        if validate:
            validate_circuit(circuit).raise_if_invalid()
        self.circuit = circuit
        self.temperature = float(temperature)
        self.rng = np.random.default_rng(seed)
        self.kernel = MonteCarloKernel(circuit, temperature, self.rng,
                                       include_cotunneling=include_cotunneling)

    # ------------------------------------------------------------------- runs

    def new_state(self, electrons: Optional[Sequence[int]] = None) -> SimulationState:
        """A fresh simulation state (ground-state electrons by default)."""
        electron_array = None if electrons is None else np.asarray(electrons,
                                                                   dtype=np.int64)
        return initial_state(self.circuit, self.kernel.model, electron_array)

    def run(self, max_events: Optional[int] = None,
            duration: Optional[float] = None,
            state: Optional[SimulationState] = None,
            record_events: bool = False,
            occupation: Optional[OccupationStatistics] = None) -> TrajectoryResult:
        """Run a trajectory until an event budget or a time budget is exhausted.

        Parameters
        ----------
        max_events:
            Stop after this many executed events.
        duration:
            Stop once the simulated time advances past this many seconds.
            At least one of ``max_events``/``duration`` must be given.
        state:
            Continue from an existing state instead of a fresh one.
        record_events:
            Keep a per-event record (time, label, configuration) in the
            result.  Off by default because long runs produce millions of
            events.
        occupation:
            Optional :class:`OccupationStatistics` accumulator filled with
            dwell times.
        """
        if max_events is None and duration is None:
            raise SimulationError("specify max_events and/or duration")
        if state is None:
            state = self.new_state()

        start_time = state.time
        start_events = state.event_count
        records: List[EventRecord] = []
        trap_flips = 0
        stall_strikes = 0

        while True:
            if max_events is not None and state.event_count - start_events >= max_events:
                break
            if duration is not None and state.time - start_time >= duration:
                break
            remaining = None
            if duration is not None:
                remaining = duration - (state.time - start_time)
            previous_electrons = tuple(int(v) for v in state.electrons)
            previous_time = state.time
            step = self.kernel.step(state, max_waiting_time=remaining)
            if occupation is not None:
                occupation.record(previous_electrons, state.time - previous_time)
            if step is None:
                if duration is not None:
                    # Time budget consumed (possibly by a blockade); done.
                    if state.time - start_time >= duration:
                        break
                stall_strikes += 1
                if stall_strikes > 3:
                    # Completely blockaded at T = 0 with no time budget left to
                    # burn: the trajectory cannot advance further.
                    break
                continue
            stall_strikes = 0
            if step.candidate.label.startswith("trap:"):
                trap_flips += 1
            if record_events:
                records.append(EventRecord(
                    time=state.time,
                    label=step.candidate.label,
                    electrons=tuple(int(v) for v in state.electrons),
                ))

        return TrajectoryResult(
            duration=state.time - start_time,
            event_count=state.event_count - start_events,
            electron_transfers=dict(state.electron_transfers),
            final_electrons=tuple(int(v) for v in state.electrons),
            records=records,
            trap_flips=trap_flips,
        )

    # -------------------------------------------------------------- stationary

    def stationary_current(self, junction_name: str,
                           max_events: int = 20_000,
                           warmup_events: int = 1_000,
                           blocks: int = 10) -> CurrentEstimate:
        """Estimate the stationary current through one junction.

        The estimator counts the net electron transfer through the junction
        over the post-warm-up part of a single long trajectory, split into
        ``blocks`` equal event blocks for a standard-error estimate.

        Parameters
        ----------
        junction_name:
            Junction whose conventional current (``node_a`` -> ``node_b``) is
            estimated.
        max_events:
            Total number of events after warm-up.
        warmup_events:
            Events discarded at the start to forget the initial condition.
        blocks:
            Number of blocks for the error estimate.
        """
        if not self.circuit.has_element(junction_name):
            raise SimulationError(f"unknown junction {junction_name!r}")
        if blocks < 2:
            raise SimulationError("need at least 2 blocks for an error estimate")
        state = self.new_state()
        if warmup_events > 0:
            self.run(max_events=warmup_events, state=state)

        per_block = max(1, max_events // blocks)
        charges: List[float] = []
        durations: List[float] = []
        total_events = 0
        for _ in range(blocks):
            before_transfer = state.electron_transfers[junction_name]
            before_time = state.time
            result = self.run(max_events=per_block, state=state)
            total_events += result.event_count
            transferred = state.electron_transfers[junction_name] - before_transfer
            elapsed = state.time - before_time
            charges.append(-transferred * E_CHARGE)
            durations.append(elapsed)
            if result.event_count == 0:
                # Blockaded: no more events will ever occur.
                break

        usable = [(charge, dt) for charge, dt in zip(charges, durations) if dt > 0.0]
        if not usable:
            return CurrentEstimate(mean=0.0, stderr=0.0, blocks=0, duration=0.0,
                                   events=total_events)
        mean, stderr, block_count = block_average(
            [charge for charge, _ in usable], [dt for _, dt in usable])
        return CurrentEstimate(
            mean=mean,
            stderr=stderr,
            blocks=block_count,
            duration=float(sum(dt for _, dt in usable)),
            events=total_events,
        )

    def sweep_source(self, source: str, values: Sequence[float],
                     junction_name: str, max_events: int = 20_000,
                     warmup_events: int = 1_000) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sweep a voltage source and estimate the current at every point.

        Returns ``(values, currents, stderrs)``.
        """
        original = dict(self.circuit.source_voltages())
        currents = np.empty(len(values))
        errors = np.empty(len(values))
        try:
            for position, value in enumerate(values):
                self.circuit.set_source_voltage(source, float(value))
                estimate = self.stationary_current(junction_name,
                                                   max_events=max_events,
                                                   warmup_events=warmup_events)
                currents[position] = estimate.mean
                errors[position] = estimate.stderr
        finally:
            for node_name, voltage in original.items():
                if node_name != "gnd":
                    self.circuit.set_source_voltage(node_name, voltage)
        return np.asarray(values, dtype=float), currents, errors


__all__ = ["MonteCarloSimulator"]
