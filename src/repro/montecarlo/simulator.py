"""User-facing kinetic Monte-Carlo simulator (the package's SIMON equivalent).

:class:`MonteCarloSimulator` runs transient trajectories and estimates
stationary currents for arbitrary single-electron circuits, with optional
co-tunnelling channels and background-charge traps.  It is the "detailed
Monte-Carlo simulator that captures all the necessary physics but is limited
in terms of circuit size" from the paper's §4; the complementary fast/compact
path is :mod:`repro.compact`.

Voltage sweeps are batched: :meth:`MonteCarloSimulator.sweep_source` carries a
*warm* simulation state from one bias point to the next (the kernel's cached
event tables and potentials survive the bias change) and can optionally fan
the points out over worker processes.

Statistics are batched too: :meth:`MonteCarloSimulator.run_ensemble` advances
``R`` independent replicas through the kernel's batched
:meth:`~repro.montecarlo.kernel.MonteCarloKernel.step_ensemble`, so every
consumer that needs error bars (stationary currents, sweeps, noise floors)
pays the Python event-loop overhead once per *macro-step* instead of once per
event per replica.  The replica spread then replaces single-trajectory block
averaging for the standard error (``stationary_current(replicas=R)``,
``sweep_source(ensemble=R)``); block averaging is kept as the reference
estimator.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..circuit.validation import validate_circuit
from ..constants import E_CHARGE
from ..errors import SimulationError
from .events import TrapCandidate
from .kernel import MonteCarloKernel
from .observables import (
    CurrentEstimate,
    EnsembleResult,
    EventRecord,
    OccupationStatistics,
    TrajectoryResult,
    block_average,
)
from .state import (
    EnsembleState,
    SimulationState,
    initial_ensemble,
    initial_state,
)


class MonteCarloSimulator:
    """Kinetic Monte-Carlo simulation of a single-electron circuit.

    Parameters
    ----------
    circuit:
        The circuit to simulate.  It is validated on construction; hard
        violations raise immediately so that a long run cannot silently
        produce nonsense.
    temperature:
        Temperature in kelvin.
    seed:
        Seed for the internal random generator (``None`` gives a fresh
        non-deterministic stream).
    include_cotunneling:
        Whether inelastic co-tunnelling channels are included.
    validate:
        Set to ``False`` to skip circuit validation (used by tests that
        deliberately build pathological circuits).
    fast_path:
        Use the vectorized kernel implementation (default).  ``False`` runs
        the scalar reference kernel — slower, kept for cross-checking.
    resync_interval:
        Events between full island-potential re-solves on the fast path.
    jit:
        Route trap-free, record-free runs through the kernel's compiled
        advance loop (:mod:`repro.montecarlo.jit`).  ``True`` picks the
        best available backend; a string pins one by name.  The compiled
        paths replay the numpy fast path event for event, so results are
        bit-identical at any given seed.
    """

    def __init__(self, circuit: Circuit, temperature: float,
                 seed: Optional[int] = None,
                 include_cotunneling: bool = False,
                 validate: bool = True,
                 fast_path: bool = True,
                 resync_interval: int = 1024,
                 jit: "bool | str" = False) -> None:
        if validate:
            validate_circuit(circuit).raise_if_invalid()
        self.circuit = circuit
        self.temperature = float(temperature)
        self.seed = seed
        self.jit = jit
        self.rng = np.random.default_rng(seed)
        self.kernel = MonteCarloKernel(circuit, temperature, self.rng,
                                       include_cotunneling=include_cotunneling,
                                       fast_path=fast_path,
                                       resync_interval=resync_interval,
                                       jit=jit)

    # ------------------------------------------------------------------- runs

    def new_state(self, electrons: Optional[Sequence[int]] = None) -> SimulationState:
        """A fresh simulation state (ground-state electrons by default)."""
        electron_array = None if electrons is None else np.asarray(electrons,
                                                                   dtype=np.int64)
        return initial_state(self.circuit, self.kernel.model, electron_array)

    def run(self, max_events: Optional[int] = None,
            duration: Optional[float] = None,
            state: Optional[SimulationState] = None,
            record_events: bool = False,
            occupation: Optional[OccupationStatistics] = None) -> TrajectoryResult:
        """Run a trajectory until an event budget or a time budget is exhausted.

        Parameters
        ----------
        max_events:
            Stop after this many executed events.
        duration:
            Stop once the simulated time advances past this many seconds.
            At least one of ``max_events``/``duration`` must be given.
        state:
            Continue from an existing state instead of a fresh one.
        record_events:
            Keep a per-event record (time, label, configuration) in the
            result.  Off by default because long runs produce millions of
            events.
        occupation:
            Optional :class:`OccupationStatistics` accumulator filled with
            dwell times.

        Returns
        -------
        TrajectoryResult
            Elapsed simulated time, executed events, per-junction electron
            transfers, the final configuration, and (when requested) the
            per-event records.
        """
        if max_events is None and duration is None:
            raise SimulationError("specify max_events and/or duration")
        if state is None:
            state = self.new_state()

        if (self.kernel.jit_enabled and not record_events
                and occupation is None and not self.kernel.traps):
            # Compiled fast path: same trajectory, same random stream, no
            # per-event Python.  Falls back to the loop below whenever a
            # consumer needs per-event hooks — or, below, when the compiled
            # kernel itself faults (the state is only committed at the end
            # of a compiled run, so the interpreted loop continues the same
            # trajectory from the untouched state).
            start_time = state.time
            start_events = state.event_count
            try:
                self.kernel.run_compiled(state, max_events=max_events,
                                         duration=duration)
            except Exception as error:
                from ..resilience.events import emit_degradation

                self.kernel.disable_jit()
                emit_degradation("jit.run_compiled", "fallback:numpy",
                                 repr(error))
            else:
                return TrajectoryResult(
                    duration=state.time - start_time,
                    event_count=state.event_count - start_events,
                    electron_transfers=dict(state.electron_transfers),
                    final_electrons=state.electron_tuple(),
                    records=[],
                    trap_flips=0,
                )

        start_time = state.time
        start_events = state.event_count
        records: List[EventRecord] = []
        trap_flips = 0
        stall_strikes = 0
        kernel_step = self.kernel.step
        track_occupation = occupation is not None

        while True:
            if max_events is not None and state.event_count - start_events >= max_events:
                break
            if duration is not None and state.time - start_time >= duration:
                break
            remaining = None
            if duration is not None:
                remaining = duration - (state.time - start_time)
            if track_occupation:
                # Snapshot only when a consumer exists: building a tuple per
                # step would otherwise dominate the fast kernel.
                previous_electrons = state.electron_tuple()
                previous_time = state.time
            step = kernel_step(state, max_waiting_time=remaining)
            if track_occupation:
                occupation.record(previous_electrons, state.time - previous_time)
            if step is None:
                if duration is not None:
                    # Time budget consumed (possibly by a blockade); done.
                    if state.time - start_time >= duration:
                        break
                stall_strikes += 1
                if stall_strikes > 3:
                    # Completely blockaded at T = 0 with no time budget left to
                    # burn: the trajectory cannot advance further.
                    break
                continue
            stall_strikes = 0
            if isinstance(step.candidate, TrapCandidate):
                trap_flips += 1
            if record_events:
                records.append(EventRecord(
                    time=state.time,
                    label=step.candidate.label,
                    electrons=state.electron_tuple(),
                ))

        return TrajectoryResult(
            duration=state.time - start_time,
            event_count=state.event_count - start_events,
            electron_transfers=dict(state.electron_transfers),
            final_electrons=state.electron_tuple(),
            records=records,
            trap_flips=trap_flips,
        )

    # -------------------------------------------------------------- ensembles

    def new_ensemble(self, replicas: int,
                     electrons: Optional[Sequence[int]] = None
                     ) -> EnsembleState:
        """A fresh ``R``-replica ensemble state (ground state by default)."""
        return initial_ensemble(self.circuit, self.kernel.model, replicas,
                                electrons)

    def run_ensemble(self, replicas: Optional[int] = None,
                     max_events: Optional[int] = None,
                     duration: Optional[float] = None,
                     ensemble: Optional[EnsembleState] = None
                     ) -> EnsembleResult:
        """Advance ``R`` independent replicas until each exhausts its budget.

        The batched equivalent of :meth:`run`: every replica follows its own
        stochastic trajectory (all sharing the circuit, bias point and
        memoised rate tables), advanced one event per macro-step through
        :meth:`~repro.montecarlo.kernel.MonteCarloKernel.step_ensemble`.
        Budgets apply per replica: each stops after ``max_events`` executed
        events and/or once its clock advances past ``duration`` seconds.

        Parameters
        ----------
        replicas:
            Number of replicas for a fresh ensemble (ignored when
            ``ensemble`` is given).
        max_events, duration:
            Per-replica budgets; at least one must be given.
        ensemble:
            Continue from an existing :class:`EnsembleState` instead of a
            fresh ground-state ensemble.

        Returns
        -------
        EnsembleResult
            Per-replica durations, event counts, per-junction electron
            transfers, and final configurations; its
            :meth:`~repro.montecarlo.observables.EnsembleResult.current_estimate`
            turns the replica spread into an error bar.
        """
        if max_events is None and duration is None:
            raise SimulationError("specify max_events and/or duration")
        if ensemble is None:
            if replicas is None:
                raise SimulationError("specify replicas or an ensemble state")
            ensemble = self.new_ensemble(replicas)

        start_times = ensemble.times.copy()
        start_counts = ensemble.event_counts.copy()
        start_transfers = ensemble.electron_transfers.copy()
        if self.kernel.jit_enabled and not self.kernel.traps:
            # Compiled path: each replica runs its whole budget through the
            # native loop (shared rate memo, sequential replicas).  An
            # R = 1 ensemble replays the scalar compiled run bit for bit.
            # On a compiled-kernel fault the interpreted loop below picks up
            # where the native one stopped: budgets are measured against the
            # start_* snapshots, so partially advanced replicas finish their
            # remaining budget instead of re-running it.
            try:
                self.kernel.run_ensemble_compiled(ensemble,
                                                  max_events=max_events,
                                                  duration=duration)
            except Exception as error:
                from ..resilience.events import emit_degradation

                self.kernel.disable_jit()
                emit_degradation("jit.run_compiled", "fallback:numpy",
                                 repr(error))
            else:
                return EnsembleResult(
                    durations=ensemble.times - start_times,
                    event_counts=ensemble.event_counts - start_counts,
                    electron_transfers=(ensemble.electron_transfers
                                        - start_transfers),
                    junction_names=ensemble.junction_names,
                    final_electrons=ensemble.electrons.copy(),
                )
        count = ensemble.replica_count
        finished = np.zeros(count, dtype=bool)
        step_ensemble = self.kernel.step_ensemble
        stall_strikes = 0

        if duration is None \
                and bool((ensemble.event_counts == start_counts).all()):
            # Lockstep fast path: with an event-only budget every unblocked
            # replica executes exactly one event per macro-step, so no
            # per-step budget bookkeeping (and no active mask) is needed
            # until a replica blockades — then fall through to the general
            # loop for the stragglers.  Skipped when a faulted compiled run
            # already advanced some replicas: the general loop below meters
            # the remaining per-replica budgets correctly.
            executed = 0
            while executed < max_events:
                step = step_ensemble(ensemble)
                if step.advanced < count:
                    break
                executed += 1

        while True:
            if max_events is not None:
                finished |= (ensemble.event_counts - start_counts) >= max_events
            budgets = None
            if duration is not None:
                elapsed = ensemble.times - start_times
                finished |= elapsed >= duration
                budgets = duration - elapsed
            if finished.all():
                break
            active = ~finished
            step = step_ensemble(ensemble, max_waiting_time=budgets,
                                 active=active)
            if step.advanced == 0:
                # Either every active replica is blockaded (T = 0) or the
                # remaining time budgets round to nothing; as in the scalar
                # run loop a few strikes end the run instead of spinning.
                stall_strikes += 1
                if stall_strikes > 3:
                    break
            else:
                stall_strikes = 0

        return EnsembleResult(
            durations=ensemble.times - start_times,
            event_counts=ensemble.event_counts - start_counts,
            electron_transfers=ensemble.electron_transfers - start_transfers,
            junction_names=ensemble.junction_names,
            final_electrons=ensemble.electrons.copy(),
        )

    # -------------------------------------------------------------- stationary

    def stationary_current(self, junction_name: str,
                           max_events: int = 20_000,
                           warmup_events: int = 1_000,
                           blocks: int = 10,
                           replicas: Optional[int] = None) -> CurrentEstimate:
        """Estimate the stationary current through one junction.

        The default estimator counts the net electron transfer through the
        junction over the post-warm-up part of a single long trajectory,
        split into ``blocks`` equal event blocks for a standard-error
        estimate.  With ``replicas`` set, the total event budget is instead
        spread over ``R`` independent replicas advanced in one batched
        ensemble run, and the replica spread provides the error bar — same
        physics, far less interpreter overhead, and no block-length
        correlation caveat (block averaging remains available as the
        reference estimator).

        Parameters
        ----------
        junction_name:
            Junction whose conventional current (``node_a`` -> ``node_b``) is
            estimated.
        max_events:
            Total number of events after warm-up (split across replicas in
            ensemble mode).
        warmup_events:
            Events discarded at the start to forget the initial condition
            (per replica in ensemble mode).
        blocks:
            Number of blocks for the single-trajectory error estimate.
        replicas:
            Optional replica count; ``None`` (default) runs the scalar
            block-averaged estimator, values >= 1 run the ensemble
            estimator.  ``replicas=1`` yields the same mean as the scalar
            estimator at the same seed (one trajectory, no spread — the
            standard error is infinite).

        Returns
        -------
        CurrentEstimate
            Mean current in ampere with its standard error, plus the block
            count, simulated duration, and executed events behind it.
        """
        self._check_estimator_args(junction_name, blocks)
        if replicas is not None:
            if replicas < 1:
                raise SimulationError(
                    "need at least 1 replica for an ensemble estimate")
            ensemble = self.new_ensemble(replicas)
            if warmup_events > 0:
                self.run_ensemble(max_events=warmup_events, ensemble=ensemble)
            return self._estimate_current_ensemble(ensemble, junction_name,
                                                   max_events)
        state = self.new_state()
        if warmup_events > 0:
            self.run(max_events=warmup_events, state=state)
        return self._estimate_current(state, junction_name, max_events, blocks)

    def _check_estimator_args(self, junction_name: str, blocks: int) -> None:
        if not self.circuit.has_element(junction_name):
            raise SimulationError(f"unknown junction {junction_name!r}")
        if blocks < 2:
            raise SimulationError("need at least 2 blocks for an error estimate")

    def _estimate_current(self, state: SimulationState, junction_name: str,
                          max_events: int, blocks: int) -> CurrentEstimate:
        """Block-averaged current estimate continuing from ``state``.

        The mean is the whole-window charge over the whole-window duration
        (mathematically the duration-weighted block mean, but computed from
        the run's start/end counters so it is *bit-identical* to the
        ensemble estimator's total-ratio form at equal trajectories); block
        averaging supplies the standard error.
        """
        per_block = max(1, max_events // blocks)
        charges: List[float] = []
        durations: List[float] = []
        total_events = 0
        window_start_transfer = state.electron_transfers[junction_name]
        window_start_time = state.time
        for _ in range(blocks):
            before_transfer = state.electron_transfers[junction_name]
            before_time = state.time
            result = self.run(max_events=per_block, state=state)
            total_events += result.event_count
            transferred = state.electron_transfers[junction_name] - before_transfer
            elapsed = state.time - before_time
            charges.append(-transferred * E_CHARGE)
            durations.append(elapsed)
            if result.event_count == 0:
                # Blockaded: no more events will ever occur.
                break

        usable = [(charge, dt) for charge, dt in zip(charges, durations) if dt > 0.0]
        if not usable:
            return CurrentEstimate(mean=0.0, stderr=0.0, blocks=0, duration=0.0,
                                   events=total_events)
        _, stderr, block_count = block_average(
            [charge for charge, _ in usable], [dt for _, dt in usable])
        total_charge = -(state.electron_transfers[junction_name]
                         - window_start_transfer) * E_CHARGE
        total_elapsed = state.time - window_start_time
        return CurrentEstimate(
            mean=float(total_charge / total_elapsed),
            stderr=stderr,
            blocks=block_count,
            duration=float(sum(dt for _, dt in usable)),
            events=total_events,
        )

    def _estimate_current_ensemble(self, ensemble: EnsembleState,
                                   junction_name: str,
                                   max_events: int) -> CurrentEstimate:
        """Replica-spread current estimate continuing from ``ensemble``.

        The total ``max_events`` budget is divided evenly over the replicas,
        so scalar and ensemble estimates at equal budgets do comparable
        amounts of stochastic work.
        """
        per_replica = max(1, max_events // ensemble.replica_count)
        result = self.run_ensemble(max_events=per_replica, ensemble=ensemble)
        return result.current_estimate(junction_name)

    def sweep_source(self, source: str, values: Sequence[float],
                     junction_name: str, max_events: int = 20_000,
                     warmup_events: int = 1_000,
                     warm_start: bool = True,
                     workers: int = 1,
                     ensemble: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sweep a voltage source and estimate the current at every point.

        Parameters
        ----------
        source:
            Voltage source (element or node name) to sweep.
        values:
            Bias values to visit, in order.
        junction_name:
            Junction whose current is estimated at each point.
        max_events, warmup_events:
            Per-point event budgets (see :meth:`stationary_current`).
        warm_start:
            Carry the simulation state from one bias point to the next instead
            of re-equilibrating from a cold ground state every time.  The
            kernel's construction-time event tables survive the bias change
            (the per-configuration rate memo is rebuilt, since every rate
            depends on the bias).  Set to ``False`` for the legacy cold-start
            behaviour.
        workers:
            Number of worker processes.  ``1`` (default) runs in-process;
            larger values partition the bias points over a process pool, each
            worker simulating an independent circuit copy with a seed derived
            from this simulator's seed.
        ensemble:
            Optional replica count.  When set (>= 2), every bias point is
            estimated from an ``R``-replica batched ensemble run (replica
            spread for the error bar) instead of a single block-averaged
            trajectory; with ``warm_start`` the whole ensemble is carried
            from one bias point to the next.

        Returns
        -------
        (values, currents, stderrs):
            The applied bias values, the estimated currents in ampere, and
            their standard errors, as equal-length float arrays.
        """
        self._check_estimator_args(junction_name, blocks=10)
        if ensemble is not None and ensemble < 1:
            raise SimulationError(
                "need at least 1 replica for an ensemble estimate")
        if workers > 1 and len(values) > 1:
            return self._sweep_parallel(source, values, junction_name,
                                        max_events, warmup_events, warm_start,
                                        workers, ensemble)

        original = dict(self.circuit.source_voltages())
        currents = np.empty(len(values))
        errors = np.empty(len(values))
        state: Optional[SimulationState] = None
        ensemble_state: Optional[EnsembleState] = None
        try:
            for position, value in enumerate(values):
                self.circuit.set_source_voltage(source, float(value))
                if ensemble is not None:
                    if ensemble_state is None or not warm_start:
                        ensemble_state = self.new_ensemble(ensemble)
                    # Zero the clocks per point for the same float64
                    # resolution reason as the scalar warm-start path below.
                    ensemble_state.times[:] = 0.0
                    if warmup_events > 0:
                        self.run_ensemble(max_events=warmup_events,
                                          ensemble=ensemble_state)
                    estimate = self._estimate_current_ensemble(
                        ensemble_state, junction_name, max_events)
                elif warm_start:
                    if state is None:
                        state = self.new_state()
                    # Zero the clock per point: a blockaded point advances the
                    # simulated time by ~1/rate (astronomical), after which
                    # float64 can no longer resolve nanosecond increments and
                    # every elapsed-time difference would collapse to zero.
                    state.time = 0.0
                    if warmup_events > 0:
                        self.run(max_events=warmup_events, state=state)
                    estimate = self._estimate_current(state, junction_name,
                                                      max_events, blocks=10)
                else:
                    estimate = self.stationary_current(junction_name,
                                                       max_events=max_events,
                                                       warmup_events=warmup_events)
                currents[position] = estimate.mean
                errors[position] = estimate.stderr
        finally:
            for node_name, voltage in original.items():
                if node_name != "gnd":
                    self.circuit.set_source_voltage(node_name, voltage)
        return np.asarray(values, dtype=float), currents, errors

    def _sweep_parallel(self, source: str, values: Sequence[float],
                        junction_name: str, max_events: int,
                        warmup_events: int, warm_start: bool, workers: int,
                        ensemble: Optional[int] = None
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Partition the bias points over a process pool."""
        from concurrent.futures import ProcessPoolExecutor

        workers = min(int(workers), len(values), os.cpu_count() or 1)
        chunks = [list(chunk) for chunk in np.array_split(np.asarray(values, float),
                                                          workers)]
        chunks = [chunk for chunk in chunks if chunk]
        # Worker seeds come from this simulator's generator, not its fixed
        # seed, so repeated sweeps on the same simulator produce independent
        # estimates (as the serial path does) while staying reproducible for
        # a seeded simulator.
        root = np.random.SeedSequence(int(self.rng.integers(2**63)))
        seeds = [int(child.generate_state(1)[0])
                 for child in root.spawn(len(chunks))]
        payloads = [
            (self.circuit.copy(), self.temperature,
             self.kernel.include_cotunneling, self.kernel.fast_path,
             self.kernel.resync_interval, self.jit, source, chunk,
             junction_name, max_events, warmup_events, warm_start, seed,
             ensemble)
            for chunk, seed in zip(chunks, seeds)
        ]
        currents: List[float] = []
        errors: List[float] = []
        try:
            with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
                for chunk_result in pool.map(_sweep_chunk, payloads):
                    for mean, stderr in chunk_result:
                        currents.append(mean)
                        errors.append(stderr)
        except (OSError, ImportError):
            # No usable process pool in this environment: degrade gracefully.
            return self.sweep_source(source, values, junction_name,
                                     max_events=max_events,
                                     warmup_events=warmup_events,
                                     warm_start=warm_start, workers=1,
                                     ensemble=ensemble)
        return (np.asarray(values, dtype=float), np.asarray(currents),
                np.asarray(errors))


def _sweep_chunk(payload) -> List[Tuple[float, float]]:
    """Worker body of :meth:`MonteCarloSimulator._sweep_parallel` (picklable)."""
    (circuit, temperature, include_cotunneling, fast_path, resync_interval,
     jit, source, values, junction_name, max_events, warmup_events,
     warm_start, seed, ensemble) = payload
    simulator = MonteCarloSimulator(circuit, temperature, seed=seed,
                                    include_cotunneling=include_cotunneling,
                                    validate=False, fast_path=fast_path,
                                    resync_interval=resync_interval, jit=jit)
    out: List[Tuple[float, float]] = []
    _, currents, errors = simulator.sweep_source(
        source, values, junction_name, max_events=max_events,
        warmup_events=warmup_events, warm_start=warm_start, workers=1,
        ensemble=ensemble)
    for mean, stderr in zip(currents, errors):
        out.append((float(mean), float(stderr)))
    return out


__all__ = ["MonteCarloSimulator"]
