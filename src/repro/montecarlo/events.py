"""Event candidates of the kinetic Monte-Carlo engine.

Three kinds of events can occur in a single-electron circuit:

* first-order tunnelling of one electron through one junction,
* inelastic co-tunnelling of an electron through two junctions sharing an
  island (second order), and
* a charge trap capturing or emitting an electron (random telegraph noise).

Each candidate knows how to apply itself to a :class:`SimulationState` and
which junctions it moves charge through, so the simulator can count current
without caring about the event type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..circuit.elements import ChargeTrap, TunnelJunction
from ..core.energy import EnergyModel, TunnelEvent
from .state import SimulationState


@dataclass(frozen=True)
class TunnelCandidate:
    """A first-order tunnel event through one junction."""

    event: TunnelEvent

    @property
    def label(self) -> str:
        """Human-readable identifier used in trajectory records."""
        return (f"tunnel:{self.event.junction.name}:"
                f"{self.event.source_node}->{self.event.target_node}")

    def charge_transfers(self) -> List[Tuple[str, int]]:
        """``(junction name, electron direction)`` pairs of this event."""
        return [(self.event.junction.name, self.event.direction)]

    def apply(self, state: SimulationState, model: EnergyModel) -> None:
        """Execute the event on ``state`` (electron numbers and counters)."""
        state.electrons = model.apply_event(state.electrons, self.event)
        state.electron_transfers[self.event.junction.name] += self.event.direction


@dataclass(frozen=True)
class CotunnelCandidate:
    """An inelastic co-tunnelling event through two junctions.

    The electron effectively moves from ``first.source_node`` to
    ``second.target_node`` while the intermediate island occupation is only
    virtual; the net charge configuration change is the composition of the two
    elementary events.
    """

    first: TunnelEvent
    second: TunnelEvent

    @property
    def label(self) -> str:
        """Human-readable identifier used in trajectory records."""
        return (f"cotunnel:{self.first.junction.name}+{self.second.junction.name}:"
                f"{self.first.source_node}->{self.second.target_node}")

    def charge_transfers(self) -> List[Tuple[str, int]]:
        """Both junctions carry one electron in their respective directions."""
        return [(self.first.junction.name, self.first.direction),
                (self.second.junction.name, self.second.direction)]

    def apply(self, state: SimulationState, model: EnergyModel) -> None:
        """Execute the composite event on ``state``."""
        electrons = model.apply_event(state.electrons, self.first)
        state.electrons = model.apply_event(electrons, self.second)
        state.electron_transfers[self.first.junction.name] += self.first.direction
        state.electron_transfers[self.second.junction.name] += self.second.direction


@dataclass(frozen=True)
class TrapCandidate:
    """A capture or emission event of a background-charge trap."""

    trap: ChargeTrap
    capture: bool

    @property
    def label(self) -> str:
        """Human-readable identifier used in trajectory records."""
        kind = "capture" if self.capture else "emission"
        return f"trap:{self.trap.name}:{kind}"

    def charge_transfers(self) -> List[Tuple[str, int]]:
        """Trap transitions move no charge through any junction."""
        return []

    def apply(self, state: SimulationState, model: EnergyModel) -> None:
        """Flip the trap occupation."""
        state.trap_occupancy[self.trap.name] = self.capture


__all__ = ["TunnelCandidate", "CotunnelCandidate", "TrapCandidate"]
