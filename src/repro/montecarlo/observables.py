"""Observables and result containers of the Monte-Carlo engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constants import E_CHARGE
from ..errors import AnalysisError
from .state import resolve_junction_column


@dataclass(frozen=True)
class EventRecord:
    """One executed Monte-Carlo event, for trajectory inspection."""

    time: float
    label: str
    electrons: Tuple[int, ...]


@dataclass
class TrajectoryResult:
    """Full record of a Monte-Carlo run.

    Attributes
    ----------
    duration:
        Total simulated time in seconds.
    event_count:
        Number of executed events.
    electron_transfers:
        Net signed electron count through each junction (``node_a`` ->
        ``node_b`` positive).
    records:
        Per-event records (only filled when the run was asked to record).
    final_electrons:
        Electron configuration at the end of the run.
    trap_flips:
        Number of trap transitions that occurred.
    """

    duration: float
    event_count: int
    electron_transfers: Dict[str, float]
    final_electrons: Tuple[int, ...]
    records: List[EventRecord] = field(default_factory=list)
    trap_flips: int = 0

    def mean_current(self, junction_name: str) -> float:
        """Average conventional current (A) through a junction over the run."""
        if self.duration <= 0.0:
            raise AnalysisError("run has zero duration; no current can be defined")
        transfers = self.electron_transfers.get(junction_name)
        if transfers is None:
            raise AnalysisError(
                f"unknown junction {junction_name!r}; known: "
                f"{sorted(self.electron_transfers)}"
            )
        return -transfers * E_CHARGE / self.duration

    def switching_times(self, label_prefix: str = "tunnel:") -> np.ndarray:
        """Times of all recorded events whose label starts with ``label_prefix``."""
        return np.array([record.time for record in self.records
                         if record.label.startswith(label_prefix)])


@dataclass(frozen=True)
class CurrentEstimate:
    """A Monte-Carlo current estimate with its statistical uncertainty.

    Attributes
    ----------
    mean:
        Estimated conventional current in ampere.
    stderr:
        Standard error of the mean, from block averaging.
    blocks:
        Number of blocks used for the error estimate.
    duration:
        Total simulated time (after warm-up) in seconds.
    events:
        Number of events contributing to the estimate.
    """

    mean: float
    stderr: float
    blocks: int
    duration: float
    events: int

    def agrees_with(self, reference: float, sigmas: float = 4.0,
                    absolute: float = 0.0) -> bool:
        """Whether ``reference`` lies within ``sigmas`` standard errors."""
        tolerance = sigmas * self.stderr + absolute
        return abs(self.mean - reference) <= tolerance


def block_average(values: Sequence[float], weights: Sequence[float],
                  block_count: int = 10) -> Tuple[float, float, int]:
    """Weighted block averaging for correlated time series.

    Parameters
    ----------
    values:
        Per-block accumulated quantity (e.g. charge transferred per block).
    weights:
        Per-block weights (e.g. block durations).
    block_count:
        Ignored if fewer blocks are supplied; kept for signature clarity.

    Returns
    -------
    (mean, stderr, blocks):
        The weighted mean of ``values / weights``, its standard error and the
        number of usable blocks.
    """
    values_array = np.asarray(values, dtype=float)
    weights_array = np.asarray(weights, dtype=float)
    usable = weights_array > 0.0
    values_array = values_array[usable]
    weights_array = weights_array[usable]
    blocks = values_array.size
    if blocks == 0:
        raise AnalysisError("no usable blocks for averaging")
    ratios = values_array / weights_array
    mean = float(np.average(ratios, weights=weights_array))
    if blocks == 1:
        return mean, float("inf"), 1
    variance = float(np.average((ratios - mean) ** 2, weights=weights_array))
    stderr = float(np.sqrt(variance / (blocks - 1)))
    return mean, stderr, blocks


@dataclass
class EnsembleResult:
    """Batched record of an ensemble Monte-Carlo run (one row per replica).

    Attributes
    ----------
    durations:
        ``(R,)`` simulated time each replica advanced during the run.
    event_counts:
        ``(R,)`` events executed per replica.
    electron_transfers:
        ``(R, junctions)`` net signed electron counts through each junction
        during the run, columns ordered as :attr:`junction_names`.
    junction_names:
        Junction order of the transfer columns.
    final_electrons:
        ``(R, islands)`` electron configurations at the end of the run.
    """

    durations: np.ndarray
    event_counts: np.ndarray
    electron_transfers: np.ndarray
    junction_names: Tuple[str, ...]
    final_electrons: np.ndarray

    @property
    def replica_count(self) -> int:
        """Number of replicas ``R``."""
        return int(self.durations.size)

    @property
    def total_events(self) -> int:
        """Events executed across all replicas."""
        return int(self.event_counts.sum())

    def _column(self, junction_name: str) -> int:
        return resolve_junction_column(self.junction_names, junction_name,
                                       exception=AnalysisError)

    def transferred_charges(self, junction_name: str) -> np.ndarray:
        """``(R,)`` conventional charge (C) each replica moved through a junction."""
        return -self.electron_transfers[:, self._column(junction_name)] \
            * E_CHARGE

    def replica_currents(self, junction_name: str) -> np.ndarray:
        """``(R,)`` mean conventional current of each replica, in ampere.

        Replicas with zero duration (e.g. fully blockaded at T = 0) report a
        zero current rather than a division error.
        """
        charges = self.transferred_charges(junction_name)
        currents = np.zeros(self.replica_count)
        usable = self.durations > 0.0
        currents[usable] = charges[usable] / self.durations[usable]
        return currents

    def current_estimate(self, junction_name: str) -> "CurrentEstimate":
        """Replica-spread current estimate through one junction.

        The replicas are independent trajectories, so the weighted spread of
        their per-replica currents gives an unbiased standard error without
        the block-length tuning the single-trajectory
        :func:`block_average` estimator needs; the math (duration-weighted
        mean and spread) is shared with it, with replicas playing the role
        of blocks.
        """
        charges = self.transferred_charges(junction_name)
        usable = self.durations > 0.0
        if not usable.any():
            return CurrentEstimate(mean=0.0, stderr=0.0, blocks=0,
                                   duration=0.0, events=self.total_events)
        _, stderr, replicas = block_average(charges[usable],
                                            self.durations[usable])
        # The mean as total charge over total duration: mathematically the
        # duration-weighted replica mean block_average computes, but in the
        # exact ratio-of-sums form shared with the scalar estimator, so an
        # R = 1 ensemble and a scalar run at the same seed report
        # bit-identical currents.
        mean = float(charges[usable].sum() / self.durations[usable].sum())
        return CurrentEstimate(
            mean=mean,
            stderr=stderr,
            blocks=replicas,
            duration=float(self.durations[usable].sum()),
            events=self.total_events,
        )


@dataclass
class OccupationStatistics:
    """Histogram of visited electron configurations weighted by dwell time."""

    dwell_times: Dict[Tuple[int, ...], float] = field(default_factory=dict)

    def record(self, electrons: Tuple[int, ...], dwell: float) -> None:
        """Accumulate ``dwell`` seconds spent in configuration ``electrons``."""
        self.dwell_times[electrons] = self.dwell_times.get(electrons, 0.0) + dwell

    def probabilities(self) -> Dict[Tuple[int, ...], float]:
        """Normalised occupation probabilities."""
        total = sum(self.dwell_times.values())
        if total <= 0.0:
            return {}
        return {state: dwell / total for state, dwell in self.dwell_times.items()}

    def mean_electrons(self) -> np.ndarray:
        """Time-averaged electron number per island."""
        probabilities = self.probabilities()
        if not probabilities:
            raise AnalysisError("no occupation data recorded")
        states = np.array(list(probabilities.keys()), dtype=float)
        weights = np.array(list(probabilities.values()))
        return states.T @ weights


__all__ = [
    "CurrentEstimate",
    "EnsembleResult",
    "EventRecord",
    "OccupationStatistics",
    "TrajectoryResult",
    "block_average",
]
