"""The kinetic Monte-Carlo kernel: rate evaluation and event selection.

The kernel implements the classic rejection-free (Gillespie / BKL) algorithm:

1. enumerate every possible event from the current state and its rate,
2. draw the waiting time from an exponential distribution with the total rate,
3. pick one event with probability proportional to its rate and apply it.

Two implementations of the hot path coexist:

* The **fast path** (default) evaluates all events through precomputed array
  tables: the free-energy changes of every tunnel event come from one gather
  over the island potentials (:class:`~repro.core.energy.EventTable`), the
  rates from the array-valued :func:`~repro.core.rates.orthodox_rate_vec` /
  :func:`~repro.core.rates.cotunneling_rate_vec`, and event selection from a
  single pass over the cumulative rate table.  Because the rates depend only
  on the charge configuration (the process is Markovian), every visited
  configuration is memoised as a :class:`_RateEntry` holding its island
  potentials, its cumulative rate table and links to the successor entries of
  each event.  Island potentials of a newly discovered configuration are
  obtained *incrementally* from the parent entry — the event's precomputed
  ``delta_phi`` column combination of ``C^-1`` — instead of a full linear
  solve; a full re-solve every ``resync_interval`` new entries bounds
  floating-point drift.  The memo is invalidated on source-voltage or offset
  changes (detected in O(1) through the circuit's version counters) and keyed
  by trap occupation, so telegraph noise does not thrash it.  Waiting-time
  and selection randoms are drawn in blocks rather than one scalar at a time.
* The **reference path** (``fast_path=False``) is the original per-candidate
  scalar implementation, kept verbatim as an independently-derived check; the
  test-suite asserts both paths produce the same rates.

The kernel is deliberately separated from the user-facing
:class:`~repro.montecarlo.simulator.MonteCarloSimulator` so the same stepping
machinery can be reused by specialised drivers (e.g. the RNG bit sampler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.netlist import Circuit
from ..core.energy import EnergyModel
from ..core.rates import (
    cotunneling_rate,
    cotunneling_rate_vec,
    orthodox_rate,
    orthodox_rate_vec,
)
from ..errors import SimulationError
from .cotunneling import CotunnelTable, enumerate_cotunnel_candidates
from .events import CotunnelCandidate, TrapCandidate, TunnelCandidate
from .state import SimulationState

Candidate = Union[TunnelCandidate, CotunnelCandidate, TrapCandidate]


@dataclass(slots=True)
class KernelStep:
    """Outcome of one kinetic Monte-Carlo step."""

    waiting_time: float
    candidate: Candidate
    total_rate: float


class _RateEntry:
    """Memoised per-configuration data of the fast path.

    ``electrons`` is the canonical configuration vector (never handed out
    without a copy), ``phi`` its island potentials, ``cumulative``/``total``
    the inclusive rate table used for event selection, and ``successors`` the
    lazily linked entries reached by each tunnel / co-tunnel event.
    """

    __slots__ = ("electrons", "phi", "cumulative", "total", "last_selectable",
                 "successors")

    def __init__(self, electrons: np.ndarray, phi: np.ndarray,
                 cumulative: np.ndarray, total: float, last_selectable: int,
                 n_events: int) -> None:
        self.electrons = electrons
        self.phi = phi
        self.cumulative = cumulative
        self.total = total
        self.last_selectable = last_selectable
        self.successors: List[Optional["_RateEntry"]] = [None] * n_events


class MonteCarloKernel:
    """Rate evaluation and stochastic event selection for one circuit.

    Parameters
    ----------
    circuit:
        The circuit being simulated.
    temperature:
        Temperature in kelvin.
    rng:
        NumPy random generator (the simulator owns the seed policy).
    include_cotunneling:
        Whether second-order (co-tunnelling) channels are simulated.
    fast_path:
        Use the vectorized event-table implementation (default).  Set to
        ``False`` to run the scalar reference implementation instead.
    resync_interval:
        Number of incrementally-derived configurations between full
        island-potential re-solves on the fast path (bounds floating-point
        drift).  ``1`` re-solves for every new configuration.
    """

    def __init__(self, circuit: Circuit, temperature: float,
                 rng: np.random.Generator,
                 include_cotunneling: bool = False,
                 fast_path: bool = True,
                 resync_interval: int = 1024) -> None:
        if temperature < 0.0:
            raise SimulationError("temperature must be non-negative")
        if resync_interval < 1:
            raise SimulationError("resync_interval must be at least 1")
        self.circuit = circuit
        self.temperature = float(temperature)
        self.rng = rng
        self.include_cotunneling = include_cotunneling
        self.fast_path = bool(fast_path)
        self.resync_interval = int(resync_interval)
        self.model = EnergyModel(circuit)
        self.tunnel_candidates = [TunnelCandidate(event)
                                  for event in self.model.events()]
        self.cotunnel_candidates: List[CotunnelCandidate] = (
            enumerate_cotunnel_candidates(circuit, self.model)
            if include_cotunneling else []
        )
        self.traps = circuit.charge_traps()

        # ---------------------------------------------- precomputed tables
        self._table = self.model.table
        self._n_tunnel = self._table.size
        self._n_cot = len(self.cotunnel_candidates)
        self._n_events = self._n_tunnel + self._n_cot
        self._cot_table = (CotunnelTable(self.model, self.cotunnel_candidates)
                           if self._n_cot else None)
        self._n_traps = len(self.traps)
        self._trap_capture_rates = np.array(
            [1.0 / trap.capture_time for trap in self.traps], dtype=float)
        self._trap_emission_rates = np.array(
            [1.0 / trap.emission_time for trap in self.traps], dtype=float)
        self._trap_capture_candidates = [TrapCandidate(trap, capture=True)
                                         for trap in self.traps]
        self._trap_emission_candidates = [TrapCandidate(trap, capture=False)
                                          for trap in self.traps]
        # Flat per-event apply data (tunnel events first, then co-tunnels):
        # candidate object, electron-number delta, potential delta and the
        # (junction, direction) transfer bookkeeping, each one list index away.
        self._event_candidates: List[Candidate] = (
            list(self.tunnel_candidates) + list(self.cotunnel_candidates))
        self._event_delta_n = [self._table.delta_n[k]
                               for k in range(self._n_tunnel)]
        self._event_delta_phi = [self._table.delta_phi[k]
                                 for k in range(self._n_tunnel)]
        if self._n_cot:
            self._event_delta_n += [self._cot_table.delta_n[c]
                                    for c in range(self._n_cot)]
            self._event_delta_phi += [self._cot_table.delta_phi[c]
                                      for c in range(self._n_cot)]
        self._event_transfers = [candidate.charge_transfers()
                                 for candidate in self._event_candidates]

        # ------------------------------------------- preallocated buffers
        self._rates = np.zeros(self._n_events + self._n_traps, dtype=float)
        self._delta_f = np.empty(self._n_tunnel, dtype=float)

        # ----------------------------------------------- cache bookkeeping
        self._voltages: Optional[np.ndarray] = None
        self._bias_version = -1
        self._offsets: Optional[np.ndarray] = None
        self._offsets_version = -1
        self._trap_snapshot: Optional[dict] = None
        self._trap_bits = 0
        self._entries_since_resync = 0
        #: Memoised :class:`_RateEntry` per (configuration, trap occupation).
        self._rate_cache: dict = {}
        self._rate_cache_limit = 65536
        # Block-drawn randoms (consumed left to right, refilled on demand).
        self._exp_buffer = np.empty(0)
        self._exp_position = 0
        self._uniform_buffer = np.empty(0)
        self._uniform_position = 0
        self._random_block = 4096

    # ---------------------------------------------------------------- caches

    def invalidate_caches(self) -> None:
        """Drop all cached bias/offset/rate-table data (full refresh next step)."""
        self._voltages = None
        self._bias_version = -1
        self._offsets = None
        self._offsets_version = -1
        self._trap_snapshot = None
        self._trap_bits = 0
        self._entries_since_resync = 0
        self._rate_cache.clear()

    def _refresh_bias(self) -> None:
        version = self.circuit.bias_version
        if self._voltages is None or version != self._bias_version:
            self._voltages = self.model.system.cached_source_voltages()
            self._bias_version = version
            self._rate_cache.clear()

    def _refresh_offsets(self, state: SimulationState) -> None:
        version = self.circuit.charge_version
        trap_state_changed = (self._n_traps > 0
                              and state.trap_occupancy != self._trap_snapshot)
        if self._offsets is None or version != self._offsets_version \
                or trap_state_changed:
            if version != self._offsets_version:
                # Static offsets changed: every memoised table is stale.  A
                # trap flip alone keeps the cache (configurations are keyed by
                # trap occupation as well).
                self._rate_cache.clear()
            offsets = np.array(self.model.system.cached_offset_charges())
            if self._n_traps:
                island_index = self.model.island_index
                bits = 0
                for position, trap in enumerate(self.traps):
                    if state.trap_occupancy.get(trap.name, False):
                        offsets[island_index(trap.island)] += trap.coupling
                        bits |= 1 << position
                self._trap_snapshot = dict(state.trap_occupancy)
                self._trap_bits = bits
            self._offsets = offsets
            self._offsets_version = version

    # ------------------------------------------------------- batched randoms

    def _next_exponential(self) -> float:
        """One standard-exponential variate from the block buffer."""
        position = self._exp_position
        if position >= self._exp_buffer.size:
            self._exp_buffer = self.rng.standard_exponential(self._random_block)
            position = 0
        self._exp_position = position + 1
        return float(self._exp_buffer[position])

    def _next_uniform(self) -> float:
        """One standard-uniform variate from the block buffer."""
        position = self._uniform_position
        if position >= self._uniform_buffer.size:
            self._uniform_buffer = self.rng.random(self._random_block)
            position = 0
        self._uniform_position = position + 1
        return float(self._uniform_buffer[position])

    # ------------------------------------------------------------------ rates

    def effective_offsets(self, state: SimulationState) -> np.ndarray:
        """Island offset charges including the contribution of occupied traps.

        The static offset vector and the trap contributions are cached; the
        vector is rebuilt only when an offset charge or a trap occupation
        actually changed.
        """
        self._refresh_bias()
        self._refresh_offsets(state)
        assert self._offsets is not None
        return self._offsets.copy()

    def _rates_from_phi(self, phi: np.ndarray,
                        state: SimulationState) -> np.ndarray:
        """Fill and return the shared rate buffer (tunnel | cotunnel | trap)."""
        rates = self._rates
        n_tunnel = self._n_tunnel
        n_cot = self._n_cot
        if n_tunnel:
            delta_f = self._table.delta_f(phi, self._voltages, out=self._delta_f)
            orthodox_rate_vec(delta_f, self._table.resistance, self.temperature,
                              out=rates[:n_tunnel])
        if n_cot:
            total, first, second = self._cot_table.channel_energies(self._delta_f)
            rates[n_tunnel:n_tunnel + n_cot] = cotunneling_rate_vec(
                total, first, second,
                self._cot_table.resistance_1, self._cot_table.resistance_2,
                self.temperature)
        if self._n_traps:
            occupied = np.fromiter(
                (state.trap_occupancy.get(trap.name, False) for trap in self.traps),
                dtype=bool, count=self._n_traps)
            rates[n_tunnel + n_cot:] = np.where(
                occupied, self._trap_emission_rates, self._trap_capture_rates)
        return rates

    def _compute_rates(self, state: SimulationState) -> np.ndarray:
        """Full vectorized rate evaluation from an exact potential solve."""
        self._refresh_bias()
        self._refresh_offsets(state)
        phi = np.asarray(self.model.island_potentials(
            state.electrons, self._voltages, self._offsets), dtype=float)
        return self._rates_from_phi(phi, state)

    def candidate_rates(self, state: SimulationState
                        ) -> Tuple[List[Candidate], np.ndarray]:
        """All candidates and their rates from the current state.

        Tunnel and co-tunnel candidates with zero rate are filtered out (as in
        the reference implementation); trap candidates are always present.
        """
        if not self.fast_path:
            return self.candidate_rates_reference(state)
        rates = self._compute_rates(state)
        candidates: List[Candidate] = []
        kept: List[float] = []
        for index in range(self._n_events):
            rate = rates[index]
            if rate > 0.0:
                candidates.append(self._event_candidates[index])
                kept.append(rate)
        for position, trap in enumerate(self.traps):
            occupied = state.trap_occupancy.get(trap.name, False)
            candidates.append(self._trap_emission_candidates[position] if occupied
                              else self._trap_capture_candidates[position])
            kept.append(rates[self._n_events + position])
        return candidates, np.array(kept, dtype=float)

    # --------------------------------------------------------- memo entries

    def _entry_key(self, electrons: np.ndarray):
        key = electrons.tobytes()
        if self._n_traps:
            return (key, self._trap_bits)
        return key

    def _store_entry(self, key, entry: "_RateEntry") -> None:
        if len(self._rate_cache) >= self._rate_cache_limit:
            self._rate_cache.clear()
        self._rate_cache[key] = entry

    def _build_entry(self, key, electrons: np.ndarray,
                     phi: Optional[np.ndarray],
                     state: SimulationState) -> "_RateEntry":
        """Create (and memoise) the rate table of one configuration.

        ``phi = None`` forces an exact potential solve; otherwise the caller
        supplies incrementally derived potentials.
        """
        if phi is None:
            phi = np.asarray(self.model.island_potentials(
                electrons, self._voltages, self._offsets), dtype=float)
            self._entries_since_resync = 0
        rates = self._rates_from_phi(phi, state)
        cumulative = np.cumsum(rates)
        total = float(cumulative[-1]) if cumulative.size else 0.0
        # Last positive-rate index: selection clamps to it so a threshold that
        # rounds up to exactly the total can never pick a trailing forbidden
        # (zero-rate) event, matching the reference path's filtered table.
        positive = np.nonzero(rates > 0.0)[0]
        last_selectable = int(positive[-1]) if positive.size else -1
        entry = _RateEntry(electrons, phi, cumulative, total, last_selectable,
                           self._n_events)
        self._store_entry(key, entry)
        return entry

    def _descend(self, parent: "_RateEntry", index: int,
                 state: SimulationState) -> "_RateEntry":
        """Entry of the configuration reached from ``parent`` via event ``index``.

        This is where the incremental electrostatics happens: the successor's
        island potentials are the parent's plus the event's precomputed
        ``delta_phi`` (a column combination of ``C^-1``), skipping the full
        ``C^-1 (q + B V)`` solve.  Every ``resync_interval`` discoveries the
        potentials are re-solved exactly to stop rounding drift.
        """
        electrons = parent.electrons + self._event_delta_n[index]
        key = self._entry_key(electrons)
        existing = self._rate_cache.get(key)
        if existing is not None:
            return existing
        if self._entries_since_resync >= self.resync_interval:
            phi = None
        else:
            phi = parent.phi + self._event_delta_phi[index]
            self._entries_since_resync += 1
        return self._build_entry(key, electrons, phi, state)

    # ------------------------------------------------- scalar reference path

    def candidate_rates_reference(self, state: SimulationState
                                  ) -> Tuple[List[Candidate], np.ndarray]:
        """The pre-vectorization scalar implementation, kept as the reference.

        Evaluates every candidate one at a time from freshly computed island
        potentials, with no caching whatsoever.  The fast path must agree with
        this element for element; the equivalence tests enforce it.
        """
        offsets = np.array(self.model.system.offset_charge_vector())
        island_index = self.model.island_index
        for trap in self.traps:
            if state.trap_occupancy.get(trap.name, False):
                offsets[island_index(trap.island)] += trap.coupling
        voltages = self.model.system.source_voltage_vector()
        potentials = self.model.island_potentials(state.electrons, voltages, offsets)
        candidates: List[Candidate] = []
        rates: List[float] = []

        for candidate in self.tunnel_candidates:
            delta_f = self.model.free_energy_change_from_potentials(
                potentials, candidate.event, voltages)
            rate = orthodox_rate(delta_f, candidate.event.junction.resistance,
                                 self.temperature)
            if rate > 0.0:
                candidates.append(candidate)
                rates.append(rate)

        for candidate in self.cotunnel_candidates:
            rate = self._cotunnel_rate(state, candidate, voltages, offsets)
            if rate > 0.0:
                candidates.append(candidate)
                rates.append(rate)

        for trap in self.traps:
            occupied = state.trap_occupancy.get(trap.name, False)
            if occupied:
                candidates.append(TrapCandidate(trap, capture=False))
                rates.append(1.0 / trap.emission_time)
            else:
                candidates.append(TrapCandidate(trap, capture=True))
                rates.append(1.0 / trap.capture_time)

        return candidates, np.array(rates, dtype=float)

    def _cotunnel_rate(self, state: SimulationState, candidate: CotunnelCandidate,
                       voltages: np.ndarray, offsets: np.ndarray) -> float:
        first_cost = self.model.free_energy_change(state.electrons, candidate.first,
                                                   voltages, offsets)
        intermediate = self.model.apply_event(state.electrons, candidate.first)
        second_from_intermediate = self.model.free_energy_change(
            intermediate, candidate.second, voltages, offsets)
        total = first_cost + second_from_intermediate
        # Cost of the opposite ordering (second event first) as the other
        # virtual state energy.
        second_first_cost = self.model.free_energy_change(state.electrons,
                                                          candidate.second,
                                                          voltages, offsets)
        return cotunneling_rate(
            total,
            intermediate_energy_1=first_cost,
            intermediate_energy_2=second_first_cost,
            resistance_1=candidate.first.junction.resistance,
            resistance_2=candidate.second.junction.resistance,
            temperature=self.temperature,
        )

    # ------------------------------------------------------------------ steps

    def step(self, state: SimulationState,
             max_waiting_time: Optional[float] = None) -> Optional[KernelStep]:
        """Execute one kinetic Monte-Carlo step in place.

        Returns ``None`` when no event has a positive rate (a completely
        blockaded circuit at zero temperature) or when the drawn waiting time
        exceeds ``max_waiting_time`` (in which case the state only advances in
        time and nothing is applied).
        """
        if not self.fast_path:
            return self._step_reference(state, max_waiting_time)

        # O(1) invalidation checks before consulting the memoised tables.
        circuit = self.circuit
        if self._voltages is None or circuit.bias_version != self._bias_version:
            self._refresh_bias()
        if self._offsets is None or circuit.charge_version != self._offsets_version \
                or (self._n_traps and state.trap_occupancy != self._trap_snapshot):
            self._refresh_offsets(state)

        key = self._entry_key(state.electrons)
        entry = self._rate_cache.get(key)
        if entry is None:
            entry = self._build_entry(key,
                                      np.array(state.electrons, dtype=np.int64),
                                      None, state)

        total_rate = entry.total
        if total_rate <= 0.0:
            if max_waiting_time is not None:
                state.time += max_waiting_time
            return None

        waiting = self._next_exponential() / total_rate
        if max_waiting_time is not None and waiting > max_waiting_time:
            state.time += max_waiting_time
            return None

        cumulative = entry.cumulative
        index = cumulative.searchsorted(self._next_uniform() * total_rate,
                                        side="right")
        if index > entry.last_selectable:
            index = entry.last_selectable
        state.time += waiting
        if index < self._n_events:
            successor = entry.successors[index]
            if successor is None:
                successor = self._descend(entry, index, state)
                entry.successors[index] = successor
            state.electrons = successor.electrons.copy()
            transfers = state.electron_transfers
            for name, direction in self._event_transfers[index]:
                transfers[name] += direction
            chosen = self._event_candidates[index]
        else:
            position = index - self._n_events
            trap = self.traps[position]
            occupied = state.trap_occupancy.get(trap.name, False)
            chosen = (self._trap_emission_candidates[position] if occupied
                      else self._trap_capture_candidates[position])
            chosen.apply(state, self.model)
            # The trap snapshot is now stale; the next step re-derives the
            # offsets and looks the configuration up under the new trap key.
        state.event_count += 1
        return KernelStep(waiting_time=waiting, candidate=chosen,
                          total_rate=total_rate)

    def _step_reference(self, state: SimulationState,
                        max_waiting_time: Optional[float] = None
                        ) -> Optional[KernelStep]:
        """The pre-refactor scalar step, driven by :meth:`candidate_rates_reference`."""
        candidates, rates = self.candidate_rates_reference(state)
        total_rate = float(rates.sum()) if rates.size else 0.0
        if total_rate <= 0.0:
            if max_waiting_time is not None:
                state.time += max_waiting_time
            return None

        waiting = float(self.rng.exponential(1.0 / total_rate))
        if max_waiting_time is not None and waiting > max_waiting_time:
            state.time += max_waiting_time
            return None

        threshold = self.rng.uniform(0.0, total_rate)
        cumulative = np.cumsum(rates)
        index = int(np.searchsorted(cumulative, threshold, side="right"))
        index = min(index, len(candidates) - 1)
        chosen = candidates[index]
        state.time += waiting
        chosen.apply(state, self.model)
        state.event_count += 1
        return KernelStep(waiting_time=waiting, candidate=chosen,
                          total_rate=total_rate)


__all__ = ["MonteCarloKernel", "KernelStep", "Candidate"]
