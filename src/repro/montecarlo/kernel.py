"""The kinetic Monte-Carlo kernel: rate evaluation and event selection.

The kernel implements the classic rejection-free (Gillespie / BKL) algorithm:

1. enumerate every possible event from the current state and its rate,
2. draw the waiting time from an exponential distribution with the total rate,
3. pick one event with probability proportional to its rate and apply it.

The kernel is deliberately separated from the user-facing
:class:`~repro.montecarlo.simulator.MonteCarloSimulator` so the same stepping
machinery can be reused by specialised drivers (e.g. the RNG bit sampler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.netlist import Circuit
from ..core.energy import EnergyModel
from ..core.rates import cotunneling_rate, orthodox_rate
from ..errors import SimulationError
from .cotunneling import enumerate_cotunnel_candidates
from .events import CotunnelCandidate, TrapCandidate, TunnelCandidate
from .state import SimulationState

Candidate = Union[TunnelCandidate, CotunnelCandidate, TrapCandidate]


@dataclass
class KernelStep:
    """Outcome of one kinetic Monte-Carlo step."""

    waiting_time: float
    candidate: Candidate
    total_rate: float


class MonteCarloKernel:
    """Rate evaluation and stochastic event selection for one circuit.

    Parameters
    ----------
    circuit:
        The circuit being simulated.
    temperature:
        Temperature in kelvin.
    rng:
        NumPy random generator (the simulator owns the seed policy).
    include_cotunneling:
        Whether second-order (co-tunnelling) channels are simulated.
    """

    def __init__(self, circuit: Circuit, temperature: float,
                 rng: np.random.Generator,
                 include_cotunneling: bool = False) -> None:
        if temperature < 0.0:
            raise SimulationError("temperature must be non-negative")
        self.circuit = circuit
        self.temperature = float(temperature)
        self.rng = rng
        self.include_cotunneling = include_cotunneling
        self.model = EnergyModel(circuit)
        self.tunnel_candidates = [TunnelCandidate(event)
                                  for event in self.model.events()]
        self.cotunnel_candidates: List[CotunnelCandidate] = (
            enumerate_cotunnel_candidates(circuit, self.model)
            if include_cotunneling else []
        )
        self.traps = circuit.charge_traps()
        self._static_offsets = self.model.system.offset_charge_vector()

    # ------------------------------------------------------------------ rates

    def effective_offsets(self, state: SimulationState) -> np.ndarray:
        """Island offset charges including the contribution of occupied traps."""
        offsets = np.array(self.model.system.offset_charge_vector(), dtype=float)
        for trap in self.traps:
            if state.trap_occupancy.get(trap.name, False):
                offsets[self.model.island_index(trap.island)] += trap.coupling
        return offsets

    def candidate_rates(self, state: SimulationState
                        ) -> Tuple[List[Candidate], np.ndarray]:
        """All candidates and their rates from the current state."""
        offsets = self.effective_offsets(state)
        voltages = self.model.system.source_voltage_vector()
        potentials = self.model.island_potentials(state.electrons, voltages, offsets)
        candidates: List[Candidate] = []
        rates: List[float] = []

        for candidate in self.tunnel_candidates:
            delta_f = self.model.free_energy_change_from_potentials(
                potentials, candidate.event, voltages)
            rate = orthodox_rate(delta_f, candidate.event.junction.resistance,
                                 self.temperature)
            if rate > 0.0:
                candidates.append(candidate)
                rates.append(rate)

        for candidate in self.cotunnel_candidates:
            rate = self._cotunnel_rate(state, candidate, voltages, offsets)
            if rate > 0.0:
                candidates.append(candidate)
                rates.append(rate)

        for trap in self.traps:
            occupied = state.trap_occupancy.get(trap.name, False)
            if occupied:
                candidates.append(TrapCandidate(trap, capture=False))
                rates.append(1.0 / trap.emission_time)
            else:
                candidates.append(TrapCandidate(trap, capture=True))
                rates.append(1.0 / trap.capture_time)

        return candidates, np.array(rates, dtype=float)

    def _cotunnel_rate(self, state: SimulationState, candidate: CotunnelCandidate,
                       voltages: np.ndarray, offsets: np.ndarray) -> float:
        first_cost = self.model.free_energy_change(state.electrons, candidate.first,
                                                   voltages, offsets)
        intermediate = self.model.apply_event(state.electrons, candidate.first)
        second_from_intermediate = self.model.free_energy_change(
            intermediate, candidate.second, voltages, offsets)
        total = first_cost + second_from_intermediate
        # Cost of the opposite ordering (second event first) as the other
        # virtual state energy.
        second_first_cost = self.model.free_energy_change(state.electrons,
                                                          candidate.second,
                                                          voltages, offsets)
        return cotunneling_rate(
            total,
            intermediate_energy_1=first_cost,
            intermediate_energy_2=second_first_cost,
            resistance_1=candidate.first.junction.resistance,
            resistance_2=candidate.second.junction.resistance,
            temperature=self.temperature,
        )

    # ------------------------------------------------------------------ steps

    def step(self, state: SimulationState,
             max_waiting_time: Optional[float] = None) -> Optional[KernelStep]:
        """Execute one kinetic Monte-Carlo step in place.

        Returns ``None`` when no event has a positive rate (a completely
        blockaded circuit at zero temperature) or when the drawn waiting time
        exceeds ``max_waiting_time`` (in which case the state only advances in
        time and nothing is applied).
        """
        candidates, rates = self.candidate_rates(state)
        total_rate = float(rates.sum()) if rates.size else 0.0
        if total_rate <= 0.0:
            if max_waiting_time is not None:
                state.time += max_waiting_time
            return None

        waiting = float(self.rng.exponential(1.0 / total_rate))
        if max_waiting_time is not None and waiting > max_waiting_time:
            state.time += max_waiting_time
            return None

        threshold = self.rng.uniform(0.0, total_rate)
        cumulative = np.cumsum(rates)
        index = int(np.searchsorted(cumulative, threshold, side="right"))
        index = min(index, len(candidates) - 1)
        chosen = candidates[index]

        state.time += waiting
        chosen.apply(state, self.model)
        state.event_count += 1
        return KernelStep(waiting_time=waiting, candidate=chosen,
                          total_rate=total_rate)


__all__ = ["MonteCarloKernel", "KernelStep", "Candidate"]
