"""The kinetic Monte-Carlo kernel: rate evaluation and event selection.

The kernel implements the classic rejection-free (Gillespie / BKL) algorithm:

1. enumerate every possible event from the current state and its rate,
2. draw the waiting time from an exponential distribution with the total rate,
3. pick one event with probability proportional to its rate and apply it.

Two implementations of the hot path coexist:

* The **fast path** (default) evaluates all events through precomputed array
  tables: the free-energy changes of every tunnel event come from one gather
  over the island potentials (:class:`~repro.core.energy.EventTable`), the
  rates from the array-valued :func:`~repro.core.rates.orthodox_rate_vec` /
  :func:`~repro.core.rates.cotunneling_rate_vec`, and event selection from a
  single pass over the cumulative rate table.  Because the rates depend only
  on the charge configuration (the process is Markovian), every visited
  configuration is memoised as a :class:`_RateEntry` holding its island
  potentials, its cumulative rate table and links to the successor entries of
  each event.  Island potentials of a newly discovered configuration are
  obtained *incrementally* from the parent entry — the event's precomputed
  ``delta_phi`` column combination of ``C^-1`` — instead of a full linear
  solve; a full re-solve every ``resync_interval`` new entries bounds
  floating-point drift.  The memo is invalidated on source-voltage or offset
  changes (detected in O(1) through the circuit's version counters) and keyed
  by trap occupation, so telegraph noise does not thrash it.  Waiting-time
  and selection randoms are drawn in blocks rather than one scalar at a time.
* The **reference path** (``fast_path=False``) is the original per-candidate
  scalar implementation, kept verbatim as an independently-derived check; the
  test-suite asserts both paths produce the same rates.

On top of the scalar fast path sits the **ensemble mode**
(:meth:`MonteCarloKernel.step_ensemble`): ``R`` independent replicas advance
one event each per macro-step, with waiting times, event selection and state
updates executed as batched NumPy operations over all replicas.  Replicas in
the same charge configuration share one memoised :class:`_RateEntry`, so the
rate-table cost is paid once per *configuration* rather than once per
replica, and the per-event Python overhead is amortised over the whole
ensemble.  A single-replica ensemble consumes the block random buffers in
exactly the scalar order, so ``R = 1`` reproduces the scalar fast path
event for event — the correctness anchor the test-suite enforces.

The kernel is deliberately separated from the user-facing
:class:`~repro.montecarlo.simulator.MonteCarloSimulator` so the same stepping
machinery can be reused by specialised drivers (e.g. the RNG bit sampler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.netlist import Circuit
from ..core.energy import EnergyModel
from ..core.rates import (
    cotunneling_rate,
    cotunneling_rate_vec,
    orthodox_rate,
    orthodox_rate_vec,
)
from ..errors import SimulationError
from .cotunneling import CotunnelTable, enumerate_cotunnel_candidates
from .events import CotunnelCandidate, TrapCandidate, TunnelCandidate
from .jit import (
    FREG_DURATION,
    FREG_PENDING_WAIT,
    FREG_SIZE,
    FREG_START,
    FREG_TIME,
    IREG_SIZE,
    REG_EVENTS,
    REG_EXP_POS,
    REG_PENDING_EVENT,
    REG_SLOT,
    REG_UNI_POS,
    STATUS_NEED_EXP,
    STATUS_NEED_LINK,
    STATUS_NEED_UNIFORM,
)
from .state import EnsembleState, SimulationState

Candidate = Union[TunnelCandidate, CotunnelCandidate, TrapCandidate]

#: Stand-in state for trapless ensemble rate evaluations (the rate helpers
#: only consult ``state.trap_occupancy``, which is empty here by design).
_TRAPLESS = SimulationState(time=0.0, electrons=np.empty(0, dtype=np.int64))


@dataclass(slots=True)
class KernelStep:
    """Outcome of one kinetic Monte-Carlo step."""

    waiting_time: float
    candidate: Candidate
    total_rate: float


@dataclass(slots=True)
class EnsembleStep:
    """Outcome of one batched macro-step over all replicas.

    Attributes
    ----------
    waiting_times:
        ``(R,)`` waiting time each replica advanced by an executed event this
        macro-step (0 for replicas that were inactive, blockaded, or whose
        drawn waiting time exceeded the budget).
    event_indices:
        ``(R,)`` flat event index executed per replica (the kernel's
        tunnel-then-cotunnel order), ``-1`` when no event was applied.
    total_rates:
        ``(R,)`` total escape rate of each replica's configuration before
        the step.
    advanced:
        Number of replicas that executed an event.
    """

    waiting_times: np.ndarray
    event_indices: np.ndarray
    total_rates: np.ndarray
    advanced: int


class _EnsembleCursor:
    """Per-ensemble bookkeeping linking replicas to memoised rate entries.

    ``slots[r]`` is the index of replica ``r``'s configuration in
    ``entries``; ``slot_of`` maps ``id(entry)`` back to a slot so successor
    configurations discovered during stepping are registered once.  The
    per-slot data (total rates, cumulative tables, last-selectable indices,
    successor slots) is mirrored into dense arrays so a macro-step needs no
    Python loop over replicas or configurations: event selection is one
    broadcast comparison against the gathered cumulative rows and successor
    lookup one 2-D gather, with a slow-path resolution only the first time a
    (configuration, event) transition is taken.  The cursor is valid for one
    kernel cache epoch; a bias/offset change invalidates it wholesale
    (detected through ``epoch``).
    """

    __slots__ = ("epoch", "slots", "entries", "slot_of", "n_events",
                 "n_islands", "totals", "cumulative", "last_selectable",
                 "successor_slots", "configurations", "_dirty")

    def __init__(self, epoch: int, slots: np.ndarray,
                 entries: List["_RateEntry"], n_events: int,
                 n_islands: int) -> None:
        self.epoch = epoch
        self.slots = slots
        self.entries: List["_RateEntry"] = []
        self.slot_of: dict = {}
        self.n_events = n_events
        self.n_islands = n_islands
        self.totals = np.empty(0)
        self.cumulative = np.empty((0, n_events))
        self.last_selectable = np.empty(0, dtype=np.int64)
        #: ``successor_slots[s, k]`` is the slot reached from slot ``s`` via
        #: event ``k``, or ``-1`` when that transition has not been taken yet.
        self.successor_slots = np.empty((0, n_events), dtype=np.int64)
        #: ``configurations[s]`` is slot ``s``'s canonical electron vector,
        #: used to detect external mutation of ``ensemble.electrons``.
        self.configurations = np.empty((0, n_islands), dtype=np.int64)
        self._dirty = False
        for entry in entries:
            self.register(entry)
        self.refresh()

    def matches(self, electrons: np.ndarray) -> bool:
        """Whether the slot mapping still describes ``electrons``.

        Guards against callers editing ``EnsembleState.electrons`` directly
        between runs (a documented public attribute): a mismatch forces a
        full re-key instead of silently stepping replicas with the rate
        tables of their old configurations.
        """
        return bool(np.array_equal(self.configurations[self.slots], electrons))

    def register(self, entry: "_RateEntry") -> int:
        """Slot of ``entry``, assigning a new one on first sight."""
        slot = self.slot_of.get(id(entry))
        if slot is None:
            slot = len(self.entries)
            self.entries.append(entry)
            self.slot_of[id(entry)] = slot
            self._dirty = True
        return slot

    def refresh(self) -> None:
        """Rebuild the dense per-slot mirrors after new slots were added."""
        if not self._dirty:
            return
        known = self.totals.size
        count = len(self.entries)
        totals = np.empty(count)
        # Pad with +inf so a padded column can never be counted by the
        # threshold comparison (rows always fill the row when trapless).
        cumulative = np.full((count, self.n_events), np.inf)
        last = np.empty(count, dtype=np.int64)
        successors = np.full((count, self.n_events), -1, dtype=np.int64)
        configurations = np.empty((count, self.n_islands), dtype=np.int64)
        totals[:known] = self.totals
        cumulative[:known] = self.cumulative
        last[:known] = self.last_selectable
        successors[:known] = self.successor_slots
        configurations[:known] = self.configurations
        for slot in range(known, count):
            entry = self.entries[slot]
            totals[slot] = entry.total
            cumulative[slot, :entry.cumulative.size] = entry.cumulative
            last[slot] = entry.last_selectable
            configurations[slot] = entry.electrons
        self.totals = totals
        self.cumulative = cumulative
        self.last_selectable = last
        self.successor_slots = successors
        self.configurations = configurations
        self._dirty = False


class _RateEntry:
    """Memoised per-configuration data of the fast path.

    ``electrons`` is the canonical configuration vector (never handed out
    without a copy), ``phi`` its island potentials, ``cumulative``/``total``
    the inclusive rate table used for event selection, and ``successors`` the
    lazily linked entries reached by each tunnel / co-tunnel event.
    """

    __slots__ = ("electrons", "phi", "cumulative", "total", "last_selectable",
                 "successors")

    def __init__(self, electrons: np.ndarray, phi: np.ndarray,
                 cumulative: np.ndarray, total: float, last_selectable: int,
                 n_events: int) -> None:
        self.electrons = electrons
        self.phi = phi
        self.cumulative = cumulative
        self.total = total
        self.last_selectable = last_selectable
        self.successors: List[Optional["_RateEntry"]] = [None] * n_events


class MonteCarloKernel:
    """Rate evaluation and stochastic event selection for one circuit.

    Parameters
    ----------
    circuit:
        The circuit being simulated.
    temperature:
        Temperature in kelvin.
    rng:
        NumPy random generator (the simulator owns the seed policy).
    include_cotunneling:
        Whether second-order (co-tunnelling) channels are simulated.
    fast_path:
        Use the vectorized event-table implementation (default).  Set to
        ``False`` to run the scalar reference implementation instead.
    resync_interval:
        Number of incrementally-derived configurations between full
        island-potential re-solves on the fast path (bounds floating-point
        drift).  ``1`` re-solves for every new configuration.
    jit:
        Enable the compiled advance loop (:mod:`repro.montecarlo.jit`) for
        :meth:`run_compiled`/:meth:`run_ensemble_compiled`.  ``True`` picks
        the best available backend (numba, then C, then the interpreted
        reference loop); a string pins one backend by name.  Requires
        ``fast_path=True``.
    """

    def __init__(self, circuit: Circuit, temperature: float,
                 rng: np.random.Generator,
                 include_cotunneling: bool = False,
                 fast_path: bool = True,
                 resync_interval: int = 1024,
                 jit: Union[bool, str] = False) -> None:
        if temperature < 0.0:
            raise SimulationError("temperature must be non-negative")
        if resync_interval < 1:
            raise SimulationError("resync_interval must be at least 1")
        if jit and not fast_path:
            raise SimulationError(
                "the compiled advance loop drives the fast-path rate "
                "tables; jit requires fast_path=True")
        self.circuit = circuit
        self.temperature = float(temperature)
        self.rng = rng
        self.include_cotunneling = include_cotunneling
        self.fast_path = bool(fast_path)
        self.resync_interval = int(resync_interval)
        self.model = EnergyModel(circuit)
        self.tunnel_candidates = [TunnelCandidate(event)
                                  for event in self.model.events()]
        self.cotunnel_candidates: List[CotunnelCandidate] = (
            enumerate_cotunnel_candidates(circuit, self.model)
            if include_cotunneling else []
        )
        self.traps = circuit.charge_traps()

        # ---------------------------------------------- precomputed tables
        self._table = self.model.table
        self._n_tunnel = self._table.size
        self._n_cot = len(self.cotunnel_candidates)
        self._n_events = self._n_tunnel + self._n_cot
        self._cot_table = (CotunnelTable(self.model, self.cotunnel_candidates)
                           if self._n_cot else None)
        self._n_traps = len(self.traps)
        self._trap_capture_rates = np.array(
            [1.0 / trap.capture_time for trap in self.traps], dtype=float)
        self._trap_emission_rates = np.array(
            [1.0 / trap.emission_time for trap in self.traps], dtype=float)
        self._trap_capture_candidates = [TrapCandidate(trap, capture=True)
                                         for trap in self.traps]
        self._trap_emission_candidates = [TrapCandidate(trap, capture=False)
                                          for trap in self.traps]
        # Flat per-event apply data (tunnel events first, then co-tunnels):
        # candidate object, electron-number delta, potential delta and the
        # (junction, direction) transfer bookkeeping, each one list index away.
        self._event_candidates: List[Candidate] = (
            list(self.tunnel_candidates) + list(self.cotunnel_candidates))
        self._event_delta_n = [self._table.delta_n[k]
                               for k in range(self._n_tunnel)]
        self._event_delta_phi = [self._table.delta_phi[k]
                                 for k in range(self._n_tunnel)]
        if self._n_cot:
            self._event_delta_n += [self._cot_table.delta_n[c]
                                    for c in range(self._n_cot)]
            self._event_delta_phi += [self._cot_table.delta_phi[c]
                                      for c in range(self._n_cot)]
        self._event_transfers = [candidate.charge_transfers()
                                 for candidate in self._event_candidates]
        # Dense per-event matrices for the ensemble path: row k of
        # ``_delta_n_matrix`` updates all islands of event k at once, row k of
        # ``_transfer_matrix`` its per-junction electron-transfer tally (the
        # circuit's junction order, matching EnsembleState.junction_names).
        n_islands = self.model.island_count
        self._junction_order = {junction.name: column for column, junction
                                in enumerate(circuit.junctions())}
        if self._n_events:
            self._delta_n_matrix = np.vstack(
                [np.asarray(delta, dtype=np.int64)
                 for delta in self._event_delta_n])
        else:
            self._delta_n_matrix = np.zeros((0, n_islands), dtype=np.int64)
        self._transfer_matrix = np.zeros(
            (self._n_events, len(self._junction_order)), dtype=float)
        for index, transfers in enumerate(self._event_transfers):
            for name, direction in transfers:
                self._transfer_matrix[index, self._junction_order[name]] \
                    += direction

        # ------------------------------------------- preallocated buffers
        self._rates = np.zeros(self._n_events + self._n_traps, dtype=float)
        self._delta_f = np.empty(self._n_tunnel, dtype=float)

        # ----------------------------------------------- cache bookkeeping
        self._voltages: Optional[np.ndarray] = None
        self._bias_version = -1
        self._offsets: Optional[np.ndarray] = None
        self._offsets_version = -1
        self._trap_snapshot: Optional[dict] = None
        self._trap_bits = 0
        self._entries_since_resync = 0
        #: Memoised :class:`_RateEntry` per (configuration, trap occupation).
        self._rate_cache: dict = {}
        self._rate_cache_limit = 65536
        # Bumped on every cache clear so ensemble cursors (which hold direct
        # entry references) can detect staleness in O(1).
        self._cache_epoch = 0
        # Block-drawn randoms (consumed left to right, refilled on demand).
        self._exp_buffer = np.empty(0)
        self._exp_position = 0
        self._uniform_buffer = np.empty(0)
        self._uniform_position = 0
        self._random_block = 4096

        # ------------------------------------------------ compiled backend
        self._jit_backend: Optional[str] = None
        self._jit_advance = None
        if jit:
            from .jit import resolve_advance

            requested = None if jit is True else str(jit)
            self._jit_backend, self._jit_advance = resolve_advance(requested)
        #: Cursor reused by :meth:`run_compiled` across calls (same dense
        #: mirrors as the ensemble cursor, with a single tracked slot).
        self._scalar_cursor: Optional[_EnsembleCursor] = None

    @property
    def jit_backend(self) -> Optional[str]:
        """Name of the active compiled backend, or ``None`` when disabled."""
        return self._jit_backend

    @property
    def jit_enabled(self) -> bool:
        """Whether :meth:`run_compiled`/:meth:`run_ensemble_compiled` work."""
        return self._jit_advance is not None

    # ---------------------------------------------------------------- caches

    def _clear_rate_cache(self) -> None:
        """Drop all memoised rate entries and invalidate ensemble cursors."""
        self._rate_cache.clear()
        self._cache_epoch += 1

    def invalidate_caches(self) -> None:
        """Drop all cached bias/offset/rate-table data (full refresh next step)."""
        self._voltages = None
        self._bias_version = -1
        self._offsets = None
        self._offsets_version = -1
        self._trap_snapshot = None
        self._trap_bits = 0
        self._entries_since_resync = 0
        self._clear_rate_cache()

    def _refresh_bias(self) -> None:
        version = self.circuit.bias_version
        if self._voltages is None or version != self._bias_version:
            self._voltages = self.model.system.cached_source_voltages()
            self._bias_version = version
            self._clear_rate_cache()

    def _refresh_offsets(self, state: SimulationState) -> None:
        version = self.circuit.charge_version
        trap_state_changed = (self._n_traps > 0
                              and state.trap_occupancy != self._trap_snapshot)
        if self._offsets is None or version != self._offsets_version \
                or trap_state_changed:
            if version != self._offsets_version:
                # Static offsets changed: every memoised table is stale.  A
                # trap flip alone keeps the cache (configurations are keyed by
                # trap occupation as well).
                self._clear_rate_cache()
            offsets = np.array(self.model.system.cached_offset_charges())
            if self._n_traps:
                island_index = self.model.island_index
                bits = 0
                for position, trap in enumerate(self.traps):
                    if state.trap_occupancy.get(trap.name, False):
                        offsets[island_index(trap.island)] += trap.coupling
                        bits |= 1 << position
                self._trap_snapshot = dict(state.trap_occupancy)
                self._trap_bits = bits
            self._offsets = offsets
            self._offsets_version = version

    # ------------------------------------------------------- batched randoms

    def _next_exponential(self) -> float:
        """One standard-exponential variate from the block buffer."""
        position = self._exp_position
        if position >= self._exp_buffer.size:
            self._exp_buffer = self.rng.standard_exponential(self._random_block)
            position = 0
        self._exp_position = position + 1
        return float(self._exp_buffer[position])

    def _next_uniform(self) -> float:
        """One standard-uniform variate from the block buffer."""
        position = self._uniform_position
        if position >= self._uniform_buffer.size:
            self._uniform_buffer = self.rng.random(self._random_block)
            position = 0
        self._uniform_position = position + 1
        return float(self._uniform_buffer[position])

    def _drain_buffer(self, sampler, buffer_name: str, position_name: str,
                      count: int) -> np.ndarray:
        """``count`` variates from a block buffer, refilling with ``sampler``.

        Consumes the same stream as the scalar one-at-a-time accessors in
        the same order (including the block refill pattern for ``count`` up
        to the block size), which is what makes a single-replica ensemble
        replay the scalar fast path exactly.
        """
        out = np.empty(count)
        filled = 0
        buffer = getattr(self, buffer_name)
        position = getattr(self, position_name)
        while filled < count:
            if position >= buffer.size:
                buffer = sampler(max(self._random_block, count - filled))
                setattr(self, buffer_name, buffer)
                position = 0
            take = min(buffer.size - position, count - filled)
            out[filled:filled + take] = buffer[position:position + take]
            position += take
            filled += take
        setattr(self, position_name, position)
        return out

    def _draw_exponentials(self, count: int) -> np.ndarray:
        """``count`` standard-exponential variates from the block buffer."""
        return self._drain_buffer(self.rng.standard_exponential,
                                  "_exp_buffer", "_exp_position", count)

    def _draw_uniforms(self, count: int) -> np.ndarray:
        """``count`` standard-uniform variates from the block buffer."""
        return self._drain_buffer(self.rng.random,
                                  "_uniform_buffer", "_uniform_position", count)

    # ------------------------------------------------------------------ rates

    def effective_offsets(self, state: SimulationState) -> np.ndarray:
        """Island offset charges including the contribution of occupied traps.

        The static offset vector and the trap contributions are cached; the
        vector is rebuilt only when an offset charge or a trap occupation
        actually changed.
        """
        self._refresh_bias()
        self._refresh_offsets(state)
        assert self._offsets is not None
        return self._offsets.copy()

    def _rates_from_phi(self, phi: np.ndarray,
                        state: SimulationState) -> np.ndarray:
        """Fill and return the shared rate buffer (tunnel | cotunnel | trap)."""
        rates = self._rates
        n_tunnel = self._n_tunnel
        n_cot = self._n_cot
        if n_tunnel:
            delta_f = self._table.delta_f(phi, self._voltages, out=self._delta_f)
            orthodox_rate_vec(delta_f, self._table.resistance, self.temperature,
                              out=rates[:n_tunnel])
        if n_cot:
            total, first, second = self._cot_table.channel_energies(self._delta_f)
            rates[n_tunnel:n_tunnel + n_cot] = cotunneling_rate_vec(
                total, first, second,
                self._cot_table.resistance_1, self._cot_table.resistance_2,
                self.temperature)
        if self._n_traps:
            occupied = np.fromiter(
                (state.trap_occupancy.get(trap.name, False) for trap in self.traps),
                dtype=bool, count=self._n_traps)
            rates[n_tunnel + n_cot:] = np.where(
                occupied, self._trap_emission_rates, self._trap_capture_rates)
        return rates

    def _compute_rates(self, state: SimulationState) -> np.ndarray:
        """Full vectorized rate evaluation from an exact potential solve."""
        self._refresh_bias()
        self._refresh_offsets(state)
        phi = np.asarray(self.model.island_potentials(
            state.electrons, self._voltages, self._offsets), dtype=float)
        return self._rates_from_phi(phi, state)

    def candidate_rates(self, state: SimulationState
                        ) -> Tuple[List[Candidate], np.ndarray]:
        """All candidates and their rates from the current state.

        Tunnel and co-tunnel candidates with zero rate are filtered out (as in
        the reference implementation); trap candidates are always present.
        """
        if not self.fast_path:
            return self.candidate_rates_reference(state)
        rates = self._compute_rates(state)
        candidates: List[Candidate] = []
        kept: List[float] = []
        for index in range(self._n_events):
            rate = rates[index]
            if rate > 0.0:
                candidates.append(self._event_candidates[index])
                kept.append(rate)
        for position, trap in enumerate(self.traps):
            occupied = state.trap_occupancy.get(trap.name, False)
            candidates.append(self._trap_emission_candidates[position] if occupied
                              else self._trap_capture_candidates[position])
            kept.append(rates[self._n_events + position])
        return candidates, np.array(kept, dtype=float)

    # --------------------------------------------------------- memo entries

    def _entry_key(self, electrons: np.ndarray):
        key = electrons.tobytes()
        if self._n_traps:
            return (key, self._trap_bits)
        return key

    def _store_entry(self, key, entry: "_RateEntry") -> None:
        if len(self._rate_cache) >= self._rate_cache_limit:
            self._clear_rate_cache()
        self._rate_cache[key] = entry

    def _build_entry(self, key, electrons: np.ndarray,
                     phi: Optional[np.ndarray],
                     state: SimulationState) -> "_RateEntry":
        """Create (and memoise) the rate table of one configuration.

        ``phi = None`` forces an exact potential solve; otherwise the caller
        supplies incrementally derived potentials.
        """
        if phi is None:
            phi = np.asarray(self.model.island_potentials(
                electrons, self._voltages, self._offsets), dtype=float)
            self._entries_since_resync = 0
        rates = self._rates_from_phi(phi, state)
        cumulative = np.cumsum(rates)
        total = float(cumulative[-1]) if cumulative.size else 0.0
        # Last positive-rate index: selection clamps to it so a threshold that
        # rounds up to exactly the total can never pick a trailing forbidden
        # (zero-rate) event, matching the reference path's filtered table.
        positive = np.nonzero(rates > 0.0)[0]
        last_selectable = int(positive[-1]) if positive.size else -1
        entry = _RateEntry(electrons, phi, cumulative, total, last_selectable,
                           self._n_events)
        self._store_entry(key, entry)
        return entry

    def _descend(self, parent: "_RateEntry", index: int,
                 state: SimulationState) -> "_RateEntry":
        """Entry of the configuration reached from ``parent`` via event ``index``.

        This is where the incremental electrostatics happens: the successor's
        island potentials are the parent's plus the event's precomputed
        ``delta_phi`` (a column combination of ``C^-1``), skipping the full
        ``C^-1 (q + B V)`` solve.  Every ``resync_interval`` discoveries the
        potentials are re-solved exactly to stop rounding drift.
        """
        electrons = parent.electrons + self._event_delta_n[index]
        key = self._entry_key(electrons)
        existing = self._rate_cache.get(key)
        if existing is not None:
            return existing
        if self._entries_since_resync >= self.resync_interval:
            phi = None
        else:
            phi = parent.phi + self._event_delta_phi[index]
            self._entries_since_resync += 1
        return self._build_entry(key, electrons, phi, state)

    # ------------------------------------------------- scalar reference path

    def candidate_rates_reference(self, state: SimulationState
                                  ) -> Tuple[List[Candidate], np.ndarray]:
        """The pre-vectorization scalar implementation, kept as the reference.

        Evaluates every candidate one at a time from freshly computed island
        potentials, with no caching whatsoever.  The fast path must agree with
        this element for element; the equivalence tests enforce it.
        """
        offsets = np.array(self.model.system.offset_charge_vector())
        island_index = self.model.island_index
        for trap in self.traps:
            if state.trap_occupancy.get(trap.name, False):
                offsets[island_index(trap.island)] += trap.coupling
        voltages = self.model.system.source_voltage_vector()
        potentials = self.model.island_potentials(state.electrons, voltages, offsets)
        candidates: List[Candidate] = []
        rates: List[float] = []

        for candidate in self.tunnel_candidates:
            delta_f = self.model.free_energy_change_from_potentials(
                potentials, candidate.event, voltages)
            rate = orthodox_rate(delta_f, candidate.event.junction.resistance,
                                 self.temperature)
            if rate > 0.0:
                candidates.append(candidate)
                rates.append(rate)

        for candidate in self.cotunnel_candidates:
            rate = self._cotunnel_rate(state, candidate, voltages, offsets)
            if rate > 0.0:
                candidates.append(candidate)
                rates.append(rate)

        for trap in self.traps:
            occupied = state.trap_occupancy.get(trap.name, False)
            if occupied:
                candidates.append(TrapCandidate(trap, capture=False))
                rates.append(1.0 / trap.emission_time)
            else:
                candidates.append(TrapCandidate(trap, capture=True))
                rates.append(1.0 / trap.capture_time)

        return candidates, np.array(rates, dtype=float)

    def _cotunnel_rate(self, state: SimulationState, candidate: CotunnelCandidate,
                       voltages: np.ndarray, offsets: np.ndarray) -> float:
        first_cost = self.model.free_energy_change(state.electrons, candidate.first,
                                                   voltages, offsets)
        intermediate = self.model.apply_event(state.electrons, candidate.first)
        second_from_intermediate = self.model.free_energy_change(
            intermediate, candidate.second, voltages, offsets)
        total = first_cost + second_from_intermediate
        # Cost of the opposite ordering (second event first) as the other
        # virtual state energy.
        second_first_cost = self.model.free_energy_change(state.electrons,
                                                          candidate.second,
                                                          voltages, offsets)
        return cotunneling_rate(
            total,
            intermediate_energy_1=first_cost,
            intermediate_energy_2=second_first_cost,
            resistance_1=candidate.first.junction.resistance,
            resistance_2=candidate.second.junction.resistance,
            temperature=self.temperature,
        )

    # ------------------------------------------------------------------ steps

    def step(self, state: SimulationState,
             max_waiting_time: Optional[float] = None) -> Optional[KernelStep]:
        """Execute one kinetic Monte-Carlo step in place.

        Returns ``None`` when no event has a positive rate (a completely
        blockaded circuit at zero temperature) or when the drawn waiting time
        exceeds ``max_waiting_time`` (in which case the state only advances in
        time and nothing is applied).
        """
        if not self.fast_path:
            return self._step_reference(state, max_waiting_time)

        # O(1) invalidation checks before consulting the memoised tables.
        circuit = self.circuit
        if self._voltages is None or circuit.bias_version != self._bias_version:
            self._refresh_bias()
        if self._offsets is None or circuit.charge_version != self._offsets_version \
                or (self._n_traps and state.trap_occupancy != self._trap_snapshot):
            self._refresh_offsets(state)

        key = self._entry_key(state.electrons)
        entry = self._rate_cache.get(key)
        if entry is None:
            entry = self._build_entry(key,
                                      np.array(state.electrons, dtype=np.int64),
                                      None, state)

        total_rate = entry.total
        if total_rate <= 0.0:
            if max_waiting_time is not None:
                state.time += max_waiting_time
            return None

        waiting = self._next_exponential() / total_rate
        if max_waiting_time is not None and waiting > max_waiting_time:
            state.time += max_waiting_time
            return None

        cumulative = entry.cumulative
        index = cumulative.searchsorted(self._next_uniform() * total_rate,
                                        side="right")
        if index > entry.last_selectable:
            index = entry.last_selectable
        state.time += waiting
        if index < self._n_events:
            successor = entry.successors[index]
            if successor is None:
                successor = self._descend(entry, index, state)
                entry.successors[index] = successor
            state.electrons = successor.electrons.copy()
            transfers = state.electron_transfers
            for name, direction in self._event_transfers[index]:
                transfers[name] += direction
            chosen = self._event_candidates[index]
        else:
            position = index - self._n_events
            trap = self.traps[position]
            occupied = state.trap_occupancy.get(trap.name, False)
            chosen = (self._trap_emission_candidates[position] if occupied
                      else self._trap_capture_candidates[position])
            chosen.apply(state, self.model)
            # The trap snapshot is now stale; the next step re-derives the
            # offsets and looks the configuration up under the new trap key.
        state.event_count += 1
        return KernelStep(waiting_time=waiting, candidate=chosen,
                          total_rate=total_rate)

    # ------------------------------------------------------------- ensembles

    def _ensure_cursor(self, ensemble: EnsembleState) -> _EnsembleCursor:
        """Resolve (or revalidate) the slot/entry mapping of an ensemble.

        Replicas are grouped by configuration first, so each distinct
        configuration is keyed into the memo exactly once no matter how many
        replicas currently occupy it.
        """
        cursor = ensemble.cursor
        if isinstance(cursor, _EnsembleCursor) and \
                cursor.epoch == self._cache_epoch and \
                cursor.matches(ensemble.electrons):
            return cursor
        electrons = np.ascontiguousarray(ensemble.electrons, dtype=np.int64)
        ensemble.electrons = electrons
        unique, inverse = np.unique(electrons, axis=0, return_inverse=True)
        entries: List[_RateEntry] = []
        for row in unique:
            row = np.ascontiguousarray(row)
            key = self._entry_key(row)
            entry = self._rate_cache.get(key)
            if entry is None:
                entry = self._build_entry(key, row.copy(), None, _TRAPLESS)
            entries.append(entry)
        cursor = _EnsembleCursor(self._cache_epoch,
                                 inverse.reshape(-1).astype(np.int64), entries,
                                 self._n_events, self.model.island_count)
        ensemble.cursor = cursor
        return cursor

    def step_ensemble(self, ensemble: EnsembleState,
                      max_waiting_time=None,
                      active: Optional[np.ndarray] = None) -> EnsembleStep:
        """Advance every (active) replica by at most one event, batched.

        Per macro-step each replica's memoised rate table is gathered through
        the cursor's slot mapping (replicas in the same configuration share
        one :class:`_RateEntry`), then exponential waiting times, event
        selection (grouped ``searchsorted`` per distinct configuration) and
        all state updates run as array operations over the whole ensemble.

        Parameters
        ----------
        ensemble:
            The batched replica state, advanced in place.
        max_waiting_time:
            Optional per-macro-step time budget — a scalar applied to every
            replica or a ``(R,)`` array of per-replica budgets.  Replicas
            whose drawn waiting time exceeds their budget only advance their
            clock by the budget (no event is applied), exactly like the
            scalar path.
        active:
            Optional ``(R,)`` boolean mask; inactive replicas are left
            untouched (no clock advance, no random draws).

        Returns the per-replica :class:`EnsembleStep` outcome.
        """
        if not self.fast_path:
            raise SimulationError(
                "ensemble stepping requires the vectorized kernel "
                "(fast_path=True)")
        if self._n_traps:
            raise SimulationError(
                "ensemble stepping does not support charge traps; use the "
                "scalar step() path for telegraph-noise simulations")

        circuit = self.circuit
        if self._voltages is None or circuit.bias_version != self._bias_version:
            self._refresh_bias()
        if self._offsets is None or \
                circuit.charge_version != self._offsets_version:
            self._refresh_offsets(_TRAPLESS)
        cursor = self._ensure_cursor(ensemble)

        replicas = ensemble.replica_count
        slots = cursor.slots
        totals = cursor.totals[slots]

        budgets: Optional[np.ndarray] = None
        if max_waiting_time is not None:
            budgets = np.broadcast_to(
                np.asarray(max_waiting_time, dtype=float), (replicas,))

        if active is None:
            unblocked = None          # the common case: everyone can move
            positive = totals > 0.0
            if not positive.all():
                unblocked = np.nonzero(positive)[0]
                blocked = np.nonzero(~positive)[0]
                # Blockaded replicas burn their whole time budget, as in the
                # scalar path (no randoms are consumed for them).
                if budgets is not None:
                    ensemble.times[blocked] += budgets[blocked]
        else:
            active_indices = np.nonzero(np.asarray(active, dtype=bool))[0]
            active_positive = totals[active_indices] > 0.0
            unblocked = active_indices[active_positive]
            blocked = active_indices[~active_positive]
            if blocked.size and budgets is not None:
                ensemble.times[blocked] += budgets[blocked]

        waiting_times = np.zeros(replicas)
        event_indices = np.full(replicas, -1, dtype=np.int64)
        advanced = 0
        count = replicas if unblocked is None else int(unblocked.size)
        if count:
            exps = self._draw_exponentials(count)
            if unblocked is None:
                waits = exps / totals
            else:
                waits = exps / totals[unblocked]
            proceed: Optional[np.ndarray]
            if budgets is None:
                proceed = unblocked
                proceed_waits = waits
            else:
                unblocked_budgets = budgets if unblocked is None \
                    else budgets[unblocked]
                over = waits > unblocked_budgets
                if over.any():
                    censored = np.nonzero(over)[0] if unblocked is None \
                        else unblocked[over]
                    ensemble.times[censored] += unblocked_budgets[over]
                    proceed = np.nonzero(~over)[0] if unblocked is None \
                        else unblocked[~over]
                    proceed_waits = waits[~over]
                else:
                    proceed = unblocked
                    proceed_waits = waits
            proceed_count = replicas if proceed is None else int(proceed.size)
            if proceed_count:
                uniforms = self._draw_uniforms(proceed_count)
                if proceed is None:
                    proceed_slots = slots
                    thresholds = uniforms * totals
                else:
                    proceed_slots = slots[proceed]
                    thresholds = uniforms * totals[proceed]
                # Event selection: one broadcast comparison against the
                # gathered cumulative rows — ``count(cum <= threshold)`` is
                # exactly ``searchsorted(cum, threshold, side="right")`` —
                # clamped to the last positive-rate event as in the scalar
                # path.
                rows = cursor.cumulative[proceed_slots]
                chosen = np.sum(rows <= thresholds[:, None], axis=1)
                np.minimum(chosen, cursor.last_selectable[proceed_slots],
                           out=chosen)

                successor = cursor.successor_slots[proceed_slots, chosen]
                missing = successor < 0
                if missing.any():
                    self._link_successors(cursor, proceed_slots, chosen,
                                          successor, missing)
                if proceed is None:
                    cursor.slots = successor
                    ensemble.electrons += self._delta_n_matrix[chosen]
                    ensemble.electron_transfers += self._transfer_matrix[chosen]
                    ensemble.times += proceed_waits
                    ensemble.event_counts += 1
                    waiting_times = proceed_waits
                    event_indices = chosen
                else:
                    cursor.slots[proceed] = successor
                    ensemble.electrons[proceed] += self._delta_n_matrix[chosen]
                    ensemble.electron_transfers[proceed] += \
                        self._transfer_matrix[chosen]
                    ensemble.times[proceed] += proceed_waits
                    ensemble.event_counts[proceed] += 1
                    waiting_times[proceed] = proceed_waits
                    event_indices[proceed] = chosen
                advanced = proceed_count

        return EnsembleStep(waiting_times=waiting_times,
                            event_indices=event_indices,
                            total_rates=totals, advanced=advanced)

    def _link_successors(self, cursor: _EnsembleCursor, slots: np.ndarray,
                         chosen: np.ndarray, successor: np.ndarray,
                         missing: np.ndarray) -> None:
        """Resolve not-yet-linked (configuration, event) transitions.

        Each distinct missing pair is resolved once through the memoised
        entry graph (:meth:`_descend`), registered as a cursor slot and
        written into the dense successor matrix; ``successor`` is patched in
        place.  After the first few macro-steps of a stationary run every
        transition is linked and this slow path is never entered.
        """
        pairs = slots[missing] * self._n_events + chosen[missing]
        unique_pairs, inverse = np.unique(pairs, return_inverse=True)
        resolved = np.empty(unique_pairs.size, dtype=np.int64)
        for position, pair in enumerate(unique_pairs):
            slot, event = divmod(int(pair), self._n_events)
            parent = cursor.entries[slot]
            child = parent.successors[event]
            if child is None:
                child = self._descend(parent, event, _TRAPLESS)
                parent.successors[event] = child
            resolved[position] = cursor.register(child)
        cursor.refresh()
        for position, pair in enumerate(unique_pairs):
            slot, event = divmod(int(pair), self._n_events)
            cursor.successor_slots[slot, event] = resolved[position]
        successor[missing] = resolved[inverse.reshape(-1)]

    # ------------------------------------------------------- compiled runs

    def disable_jit(self) -> None:
        """Drop this kernel to the interpreted step path permanently.

        Called by the simulator's fault recovery when a compiled run raises:
        the kernel state is untouched by a failed compiled call, so the
        interpreted path continues the same trajectory, and disabling the
        advance loop keeps one bad kernel from failing on every later call.
        """
        self._jit_advance = None

    def _require_compiled(self) -> None:
        """Common guards of the compiled entry points."""
        from ..resilience.faults import inject

        inject("jit.run_compiled")
        if self._jit_advance is None:
            raise SimulationError(
                "compiled stepping is disabled; construct the kernel with "
                "jit=True (or a backend name)")
        if self._n_traps:
            raise SimulationError(
                "compiled stepping does not support charge traps; use the "
                "scalar step() path for telegraph-noise simulations")

    def _scalar_cursor_for(self, electrons: np.ndarray
                           ) -> Tuple[_EnsembleCursor, int]:
        """Cursor and slot describing a scalar state's configuration.

        Reuses one cursor across :meth:`run_compiled` calls so the dense
        mirrors and successor links warm up once; a cache-epoch bump (bias
        or offset change) rebuilds it from scratch, exactly like the
        ensemble cursor revalidation.
        """
        electrons = np.ascontiguousarray(electrons, dtype=np.int64)
        key = self._entry_key(electrons)
        entry = self._rate_cache.get(key)
        if entry is None:
            entry = self._build_entry(key, electrons.copy(), None, _TRAPLESS)
        cursor = self._scalar_cursor
        if not (isinstance(cursor, _EnsembleCursor)
                and cursor.epoch == self._cache_epoch):
            cursor = _EnsembleCursor(self._cache_epoch,
                                     np.empty(0, dtype=np.int64), [entry],
                                     self._n_events, self.model.island_count)
            self._scalar_cursor = cursor
        slot = cursor.register(entry)
        cursor.refresh()
        return cursor, slot

    def _link_compiled(self, cursor: _EnsembleCursor, slot: int,
                       event: int) -> None:
        """Resolve one unlinked (configuration, event) transition in place."""
        parent = cursor.entries[slot]
        child = parent.successors[event]
        if child is None:
            child = self._descend(parent, event, _TRAPLESS)
            parent.successors[event] = child
        child_slot = cursor.register(child)
        cursor.refresh()
        cursor.successor_slots[slot, event] = child_slot

    def _drive_compiled(self, cursor: _EnsembleCursor, slot: int, time: float,
                        transfers: np.ndarray, max_events: Optional[int],
                        duration: Optional[float]) -> Tuple[int, float, int]:
        """Run the compiled advance loop to completion for one trajectory.

        The native loop returns whenever it needs Python — a random block
        refill or a successor link — and is re-entered with the updated
        buffers/cursor arrays (the cursor's dense mirrors are re-fetched
        per call because :meth:`_EnsembleCursor.refresh` reallocates them).
        Buffer refills replicate the scalar accessors exactly: refill with
        one ``_random_block`` draw at the consumption point, restart at
        position zero.  Returns ``(slot, time, executed_events)``.
        """
        advance = self._jit_advance
        budget = (1 << 62) if max_events is None else int(max_events)
        ireg = np.zeros(IREG_SIZE, dtype=np.int64)
        ireg[REG_SLOT] = slot
        ireg[REG_EXP_POS] = self._exp_position
        ireg[REG_UNI_POS] = self._uniform_position
        ireg[REG_PENDING_EVENT] = -1
        freg = np.zeros(FREG_SIZE)
        freg[FREG_TIME] = time
        freg[FREG_PENDING_WAIT] = -1.0
        freg[FREG_START] = time
        freg[FREG_DURATION] = np.inf if duration is None else float(duration)
        while True:
            status = advance(cursor.totals, cursor.cumulative,
                             cursor.last_selectable, cursor.successor_slots,
                             self._transfer_matrix, transfers,
                             self._exp_buffer, self._uniform_buffer,
                             ireg, freg, budget)
            if status == STATUS_NEED_EXP:
                self._exp_buffer = \
                    self.rng.standard_exponential(self._random_block)
                ireg[REG_EXP_POS] = 0
            elif status == STATUS_NEED_UNIFORM:
                self._uniform_buffer = self.rng.random(self._random_block)
                ireg[REG_UNI_POS] = 0
            elif status == STATUS_NEED_LINK:
                self._link_compiled(cursor, int(ireg[REG_SLOT]),
                                    int(ireg[REG_PENDING_EVENT]))
            else:
                break
        self._exp_position = int(ireg[REG_EXP_POS])
        self._uniform_position = int(ireg[REG_UNI_POS])
        return (int(ireg[REG_SLOT]), float(freg[FREG_TIME]),
                int(ireg[REG_EVENTS]))

    def run_compiled(self, state: SimulationState,
                     max_events: Optional[int] = None,
                     duration: Optional[float] = None) -> int:
        """Advance a scalar state through the compiled loop, in place.

        Executes events until the budgets are exhausted, replaying the
        scalar :meth:`step` trajectory bit for bit (same random stream,
        same waiting times, same selections, same censoring and blockade
        semantics).  Returns the number of executed events; ``state`` is
        updated exactly as a sequence of :meth:`step` calls would have
        left it.
        """
        self._require_compiled()
        circuit = self.circuit
        if self._voltages is None or circuit.bias_version != self._bias_version:
            self._refresh_bias()
        if self._offsets is None or \
                circuit.charge_version != self._offsets_version:
            self._refresh_offsets(state)
        cursor, slot = self._scalar_cursor_for(state.electrons)
        transfers = np.zeros(len(self._junction_order))
        slot, time, events = self._drive_compiled(cursor, slot,
                                                  float(state.time), transfers,
                                                  max_events, duration)
        state.time = time
        state.electrons = cursor.configurations[slot].copy()
        tallies = state.electron_transfers
        for name, column in self._junction_order.items():
            # The per-event transfer values are small integers, so the
            # aggregated float sums are exact and match the scalar path's
            # one-increment-per-event accumulation bitwise.
            tallies[name] += transfers[column]
        state.event_count += events
        return events

    def run_ensemble_compiled(self, ensemble: EnsembleState,
                              max_events: Optional[int] = None,
                              duration: Optional[float] = None) -> int:
        """Advance every replica through the compiled loop, in place.

        Replicas run sequentially (sharing the memoised rate tables and
        the block random buffers), each to its own per-replica budget; a
        single-replica ensemble therefore consumes the random stream in
        exactly the scalar order and replays :meth:`run_compiled` — and by
        extension the scalar :meth:`step` path — event for event.  Returns
        the total number of executed events.
        """
        self._require_compiled()
        if self._voltages is None or \
                self.circuit.bias_version != self._bias_version:
            self._refresh_bias()
        if self._offsets is None or \
                self.circuit.charge_version != self._offsets_version:
            self._refresh_offsets(_TRAPLESS)
        cursor = self._ensure_cursor(ensemble)
        transfers = ensemble.electron_transfers
        if not transfers.flags.c_contiguous or transfers.dtype != np.float64:
            transfers = np.ascontiguousarray(transfers, dtype=float)
            ensemble.electron_transfers = transfers
        executed = 0
        for replica in range(ensemble.replica_count):
            slot, time, events = self._drive_compiled(
                cursor, int(cursor.slots[replica]),
                float(ensemble.times[replica]), transfers[replica],
                max_events, duration)
            cursor.slots[replica] = slot
            ensemble.times[replica] = time
            ensemble.event_counts[replica] += events
            ensemble.electrons[replica] = cursor.configurations[slot]
            executed += events
        return executed

    def _step_reference(self, state: SimulationState,
                        max_waiting_time: Optional[float] = None
                        ) -> Optional[KernelStep]:
        """The pre-refactor scalar step, driven by :meth:`candidate_rates_reference`."""
        candidates, rates = self.candidate_rates_reference(state)
        total_rate = float(rates.sum()) if rates.size else 0.0
        if total_rate <= 0.0:
            if max_waiting_time is not None:
                state.time += max_waiting_time
            return None

        waiting = float(self.rng.exponential(1.0 / total_rate))
        if max_waiting_time is not None and waiting > max_waiting_time:
            state.time += max_waiting_time
            return None

        threshold = self.rng.uniform(0.0, total_rate)
        cumulative = np.cumsum(rates)
        index = int(np.searchsorted(cumulative, threshold, side="right"))
        index = min(index, len(candidates) - 1)
        chosen = candidates[index]
        state.time += waiting
        chosen.apply(state, self.model)
        state.event_count += 1
        return KernelStep(waiting_time=waiting, candidate=chosen,
                          total_rate=total_rate)


__all__ = ["Candidate", "EnsembleStep", "KernelStep", "MonteCarloKernel"]
