"""Kinetic Monte-Carlo simulation of single-electron circuits (SIMON-like engine)."""

from .cotunneling import (
    CotunnelTable,
    enumerate_cotunnel_candidates,
    intermediate_energies,
)
from .events import CotunnelCandidate, TrapCandidate, TunnelCandidate
from .kernel import Candidate, KernelStep, MonteCarloKernel
from .observables import (
    CurrentEstimate,
    EventRecord,
    OccupationStatistics,
    TrajectoryResult,
    block_average,
)
from .simulator import MonteCarloSimulator
from .state import SimulationState, initial_state

__all__ = [
    "Candidate",
    "CotunnelCandidate",
    "CotunnelTable",
    "CurrentEstimate",
    "EventRecord",
    "KernelStep",
    "MonteCarloKernel",
    "MonteCarloSimulator",
    "OccupationStatistics",
    "SimulationState",
    "TrajectoryResult",
    "TrapCandidate",
    "TunnelCandidate",
    "block_average",
    "enumerate_cotunnel_candidates",
    "initial_state",
    "intermediate_energies",
]
