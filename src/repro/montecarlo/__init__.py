"""Kinetic Monte-Carlo simulation of single-electron circuits (SIMON-like engine)."""

from .cotunneling import (
    CotunnelTable,
    enumerate_cotunnel_candidates,
    intermediate_energies,
)
from .events import CotunnelCandidate, TrapCandidate, TunnelCandidate
from .jit import jit_backend, jit_compiled, resolve_advance
from .kernel import Candidate, EnsembleStep, KernelStep, MonteCarloKernel
from .observables import (
    CurrentEstimate,
    EnsembleResult,
    EventRecord,
    OccupationStatistics,
    TrajectoryResult,
    block_average,
)
from .simulator import MonteCarloSimulator
from .state import (
    EnsembleState,
    SimulationState,
    initial_ensemble,
    initial_state,
)

__all__ = [
    "Candidate",
    "CotunnelCandidate",
    "CotunnelTable",
    "CurrentEstimate",
    "EnsembleResult",
    "EnsembleState",
    "EnsembleStep",
    "EventRecord",
    "KernelStep",
    "MonteCarloKernel",
    "MonteCarloSimulator",
    "OccupationStatistics",
    "SimulationState",
    "TrajectoryResult",
    "TrapCandidate",
    "TunnelCandidate",
    "block_average",
    "enumerate_cotunnel_candidates",
    "initial_ensemble",
    "initial_state",
    "intermediate_energies",
    "jit_backend",
    "jit_compiled",
    "resolve_advance",
]
