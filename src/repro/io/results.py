"""Result containers with CSV round-trips and a content-hash result cache.

Sweep-style results (a swept variable plus one or more recorded traces) are
the common currency of every experiment in the package.  :class:`SweepRecord`
stores them with metadata and serialises to/from CSV so benchmark outputs can
be archived and re-plotted without re-running the simulation.

:class:`ResultCache` persists arbitrary JSON payloads keyed by a content hash
(plus a code-version tag): the scenario layer hashes a
:class:`~repro.scenarios.spec.ScenarioSpec` and a cache hit means the engine
dispatch is skipped entirely.  Writes are atomic (temp file +
``os.replace``), so concurrent writers cannot corrupt an artifact, and a
corrupted or truncated artifact is treated as a miss and evicted.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import AnalysisError

_LOG = logging.getLogger("repro.io.cache")


@dataclass
class SweepRecord:
    """A swept variable plus named recorded traces.

    Attributes
    ----------
    name:
        Identifier of the sweep (e.g. ``"id_vg_q0_0.25"``).
    sweep_label:
        Name of the swept quantity (e.g. ``"V_gate [V]"``).
    sweep_values:
        The swept values.
    traces:
        Mapping trace name -> array of recorded values (same length as
        ``sweep_values``).
    metadata:
        Free-form string metadata (temperatures, device parameters, ...).
    """

    name: str
    sweep_label: str
    sweep_values: np.ndarray
    traces: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sweep_values = np.asarray(self.sweep_values, dtype=float)
        for key, values in list(self.traces.items()):
            array = np.asarray(values, dtype=float)
            if array.shape != self.sweep_values.shape:
                raise AnalysisError(
                    f"trace {key!r} has shape {array.shape}, expected "
                    f"{self.sweep_values.shape}"
                )
            self.traces[key] = array

    def add_trace(self, name: str, values: Sequence[float]) -> None:
        """Add one more recorded trace (must match the sweep length)."""
        array = np.asarray(values, dtype=float)
        if array.shape != self.sweep_values.shape:
            raise AnalysisError(
                f"trace {name!r} has shape {array.shape}, expected "
                f"{self.sweep_values.shape}"
            )
        self.traces[name] = array

    def trace(self, name: str) -> np.ndarray:
        """Look up a trace by name."""
        try:
            return self.traces[name]
        except KeyError:
            raise AnalysisError(
                f"unknown trace {name!r}; known traces: {sorted(self.traces)}"
            ) from None

    # ---------------------------------------------------------------- CSV I/O

    def to_csv(self, destination: Union[str, Path, io.TextIOBase, None] = None) -> str:
        """Serialise to CSV (metadata in ``#`` comment lines).

        Returns the CSV text; when ``destination`` is a path or stream, the
        text is also written there.
        """
        buffer = io.StringIO()
        for key, value in self.metadata.items():
            buffer.write(f"# {key}={value}\n")
        buffer.write(f"# name={self.name}\n")
        writer = csv.writer(buffer)
        headers = [self.sweep_label] + list(self.traces)
        writer.writerow(headers)
        for row_index in range(self.sweep_values.size):
            row = [repr(float(self.sweep_values[row_index]))]
            row += [repr(float(self.traces[key][row_index])) for key in self.traces]
            writer.writerow(row)
        text = buffer.getvalue()
        if destination is None:
            return text
        if isinstance(destination, (str, Path)):
            Path(destination).write_text(text)
        else:
            destination.write(text)
        return text

    @classmethod
    def from_csv(cls, source: Union[str, Path, io.TextIOBase],
                 name: Optional[str] = None) -> "SweepRecord":
        """Parse a CSV produced by :meth:`to_csv`."""
        if isinstance(source, (str, Path)) and Path(source).exists():
            text = Path(source).read_text()
        elif isinstance(source, (str, Path)):
            text = str(source)
        else:
            text = source.read()
        metadata: Dict[str, str] = {}
        data_lines: List[str] = []
        for line in text.splitlines():
            if line.startswith("#"):
                stripped = line[1:].strip()
                if "=" in stripped:
                    key, _, value = stripped.partition("=")
                    metadata[key.strip()] = value.strip()
            elif line.strip():
                data_lines.append(line)
        if not data_lines:
            raise AnalysisError("CSV contains no data rows")
        reader = csv.reader(io.StringIO("\n".join(data_lines)))
        headers = next(reader)
        columns: List[List[float]] = [[] for _ in headers]
        for row in reader:
            if not row:
                continue
            for index, cell in enumerate(row):
                columns[index].append(float(cell))
        record_name = name or metadata.pop("name", "sweep")
        sweep_label = headers[0]
        traces = {header: np.array(column)
                  for header, column in zip(headers[1:], (columns[1:]))}
        return cls(name=record_name, sweep_label=sweep_label,
                   sweep_values=np.array(columns[0]), traces=traces,
                   metadata=metadata)


@dataclass
class ExperimentRecord:
    """Paper-claim-versus-measured record for one experiment (EXPERIMENTS.md rows)."""

    experiment: str
    claim: str
    measured: Dict[str, float] = field(default_factory=dict)
    verdict: str = ""

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps({
            "experiment": self.experiment,
            "claim": self.claim,
            "measured": self.measured,
            "verdict": self.verdict,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        """Parse a JSON string produced by :meth:`to_json`."""
        payload = json.loads(text)
        return cls(experiment=payload["experiment"], claim=payload["claim"],
                   measured=dict(payload.get("measured", {})),
                   verdict=payload.get("verdict", ""))


#: Bump when the on-disk artifact layout changes; folded into every cache key
#: so stale-format artifacts read as misses instead of parse errors.
#: Version 2 embeds the artifact's own cache key (:data:`CACHE_KEY_FIELD`)
#: so a renamed/copied artifact is detected as corruption instead of served.
CACHE_FORMAT_VERSION = 2

#: Reserved payload field carrying the artifact's own cache key (integrity
#: check against renamed or copied artifacts); stripped on load.
CACHE_KEY_FIELD = "__cache_key__"


def content_hash(payload: Union[str, bytes, Mapping]) -> str:
    """SHA-256 content hash of a string, bytes, or JSON-able mapping.

    Mappings are canonicalised (sorted keys, compact separators) before
    hashing, so two dicts with the same content but different insertion
    order hash identically.

    Parameters
    ----------
    payload:
        The content to fingerprint.

    Returns
    -------
    str
        Hex digest of the canonical representation.
    """
    if isinstance(payload, Mapping):
        payload = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class ResultCache:
    """Content-addressed JSON artifact store (spec hash -> result payload).

    Failure semantics: the cache *degrades, it never crashes a run*.  A
    corrupted/truncated/mis-keyed artifact is evicted and served as a miss;
    an unwritable cache directory turns :meth:`store` into a logged no-op.
    Every such decision is logged on the ``repro.io.cache`` logger and
    counted on the instance (``hits``/``misses``/``evictions``/
    ``store_failures``, see :meth:`stats`), so silent corruption cannot hide
    behind a healthy-looking run.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created on first use).
    code_version:
        Version tag folded into every key.  Defaults to the package version
        plus :data:`CACHE_FORMAT_VERSION`, so upgrading the package or the
        artifact format invalidates the whole cache instead of serving
        results computed by older code.
    """

    def __init__(self, root: Union[str, Path],
                 code_version: Optional[str] = None) -> None:
        from .. import __version__

        self.root = Path(root)
        self.code_version = code_version if code_version is not None \
            else f"{__version__}+fmt{CACHE_FORMAT_VERSION}"
        #: Loads served from a valid artifact.
        self.hits = 0
        #: Loads that found no (usable) artifact.
        self.misses = 0
        #: Corrupted artifacts removed (or scheduled for removal) on load.
        self.evictions = 0
        #: Stores that degraded to a no-op on an I/O failure.
        self.store_failures = 0

    def stats(self) -> Dict[str, int]:
        """The hit/miss/eviction/store-failure counters as a plain dict."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "store_failures": self.store_failures}

    def key_for(self, spec_hash: str) -> str:
        """Cache key for a spec content hash under the current code version."""
        return content_hash(f"{self.code_version}:{spec_hash}")

    def path_for(self, key: str) -> Path:
        """Artifact path for a cache key."""
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict]:
        """Load the payload stored under ``key``; ``None`` on miss.

        A corrupted artifact (truncated write from a crashed process, manual
        edit, disk fault) is evicted and reported as a miss so the caller
        recomputes instead of crashing.

        Parameters
        ----------
        key:
            Cache key from :meth:`key_for`.

        Returns
        -------
        dict or None
            The stored payload, or ``None`` when absent or unreadable.
        """
        from ..resilience.faults import inject_value

        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            # Readable-in-principle artifact we could not read (permissions,
            # I/O error): a miss, but one worth telling the operator about.
            self.misses += 1
            _LOG.warning("cache read failed for %s (treated as miss): %r",
                         path, error)
            return None
        except UnicodeDecodeError as error:
            return self._evict(path, f"binary corruption: {error!r}")
        text = inject_value("cache.load", text)
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, ValueError) as error:
            return self._evict(path, f"unparseable JSON: {error!r}")
        if not isinstance(payload, dict):
            return self._evict(
                path, f"top-level {type(payload).__name__}, expected object")
        embedded = payload.pop(CACHE_KEY_FIELD, key)
        if embedded != key:
            return self._evict(
                path, f"key mismatch: artifact claims {str(embedded)[:16]}…, "
                      f"filed under {key[:16]}…")
        self.hits += 1
        return payload

    def _evict(self, path: Path, reason: str) -> Optional[Dict]:
        """Remove a corrupted artifact (best effort), log it, count a miss."""
        self.evictions += 1
        self.misses += 1
        _LOG.warning("cache evicted corrupted artifact %s: %s", path, reason)
        try:
            path.unlink()
        except OSError as error:
            _LOG.warning("cache could not remove %s: %r", path, error)
        return None

    def store(self, key: str, payload: Mapping) -> Optional[Path]:
        """Persist ``payload`` under ``key`` atomically; ``None`` on failure.

        The payload (plus its own key under :data:`CACHE_KEY_FIELD`, the
        integrity check :meth:`load` verifies) is written to a temporary
        file in the cache directory and moved into place with
        ``os.replace``, so readers never observe a half-written artifact
        and the last concurrent writer wins cleanly.  An I/O failure
        (unwritable directory, full disk) degrades to a logged no-op — a
        result that cannot be cached is still a result.

        Parameters
        ----------
        key:
            Cache key from :meth:`key_for`.
        payload:
            JSON-serialisable mapping to store (must not already contain
            :data:`CACHE_KEY_FIELD`).

        Returns
        -------
        pathlib.Path or None
            The artifact path, or ``None`` when the store degraded.
        """
        from ..resilience.events import emit_degradation
        from ..resilience.faults import inject

        path = self.path_for(key)
        stamped = dict(payload)
        stamped[CACHE_KEY_FIELD] = key
        text = json.dumps(stamped, sort_keys=True, indent=1)
        temp_name: Optional[str] = None
        try:
            inject("cache.store")
            self.root.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=f".{key[:16]}-", suffix=".tmp")
            with os.fdopen(descriptor, "w") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except OSError as error:
            self.store_failures += 1
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            emit_degradation("cache.store", "degrade:uncached",
                             f"{path}: {error!r}")
            return None
        except BaseException:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            raise
        return path

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


__all__ = ["CACHE_FORMAT_VERSION", "CACHE_KEY_FIELD", "ExperimentRecord",
           "ResultCache", "SweepRecord", "content_hash"]
