"""Result containers with CSV round-trips.

Sweep-style results (a swept variable plus one or more recorded traces) are
the common currency of every experiment in the package.  :class:`SweepRecord`
stores them with metadata and serialises to/from CSV so benchmark outputs can
be archived and re-plotted without re-running the simulation.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import AnalysisError


@dataclass
class SweepRecord:
    """A swept variable plus named recorded traces.

    Attributes
    ----------
    name:
        Identifier of the sweep (e.g. ``"id_vg_q0_0.25"``).
    sweep_label:
        Name of the swept quantity (e.g. ``"V_gate [V]"``).
    sweep_values:
        The swept values.
    traces:
        Mapping trace name -> array of recorded values (same length as
        ``sweep_values``).
    metadata:
        Free-form string metadata (temperatures, device parameters, ...).
    """

    name: str
    sweep_label: str
    sweep_values: np.ndarray
    traces: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sweep_values = np.asarray(self.sweep_values, dtype=float)
        for key, values in list(self.traces.items()):
            array = np.asarray(values, dtype=float)
            if array.shape != self.sweep_values.shape:
                raise AnalysisError(
                    f"trace {key!r} has shape {array.shape}, expected "
                    f"{self.sweep_values.shape}"
                )
            self.traces[key] = array

    def add_trace(self, name: str, values: Sequence[float]) -> None:
        """Add one more recorded trace (must match the sweep length)."""
        array = np.asarray(values, dtype=float)
        if array.shape != self.sweep_values.shape:
            raise AnalysisError(
                f"trace {name!r} has shape {array.shape}, expected "
                f"{self.sweep_values.shape}"
            )
        self.traces[name] = array

    def trace(self, name: str) -> np.ndarray:
        """Look up a trace by name."""
        try:
            return self.traces[name]
        except KeyError:
            raise AnalysisError(
                f"unknown trace {name!r}; known traces: {sorted(self.traces)}"
            ) from None

    # ---------------------------------------------------------------- CSV I/O

    def to_csv(self, destination: Union[str, Path, io.TextIOBase, None] = None) -> str:
        """Serialise to CSV (metadata in ``#`` comment lines).

        Returns the CSV text; when ``destination`` is a path or stream, the
        text is also written there.
        """
        buffer = io.StringIO()
        for key, value in self.metadata.items():
            buffer.write(f"# {key}={value}\n")
        buffer.write(f"# name={self.name}\n")
        writer = csv.writer(buffer)
        headers = [self.sweep_label] + list(self.traces)
        writer.writerow(headers)
        for row_index in range(self.sweep_values.size):
            row = [repr(float(self.sweep_values[row_index]))]
            row += [repr(float(self.traces[key][row_index])) for key in self.traces]
            writer.writerow(row)
        text = buffer.getvalue()
        if destination is None:
            return text
        if isinstance(destination, (str, Path)):
            Path(destination).write_text(text)
        else:
            destination.write(text)
        return text

    @classmethod
    def from_csv(cls, source: Union[str, Path, io.TextIOBase],
                 name: Optional[str] = None) -> "SweepRecord":
        """Parse a CSV produced by :meth:`to_csv`."""
        if isinstance(source, (str, Path)) and Path(source).exists():
            text = Path(source).read_text()
        elif isinstance(source, (str, Path)):
            text = str(source)
        else:
            text = source.read()
        metadata: Dict[str, str] = {}
        data_lines: List[str] = []
        for line in text.splitlines():
            if line.startswith("#"):
                stripped = line[1:].strip()
                if "=" in stripped:
                    key, _, value = stripped.partition("=")
                    metadata[key.strip()] = value.strip()
            elif line.strip():
                data_lines.append(line)
        if not data_lines:
            raise AnalysisError("CSV contains no data rows")
        reader = csv.reader(io.StringIO("\n".join(data_lines)))
        headers = next(reader)
        columns: List[List[float]] = [[] for _ in headers]
        for row in reader:
            if not row:
                continue
            for index, cell in enumerate(row):
                columns[index].append(float(cell))
        record_name = name or metadata.pop("name", "sweep")
        sweep_label = headers[0]
        traces = {header: np.array(column)
                  for header, column in zip(headers[1:], (columns[1:]))}
        return cls(name=record_name, sweep_label=sweep_label,
                   sweep_values=np.array(columns[0]), traces=traces,
                   metadata=metadata)


@dataclass
class ExperimentRecord:
    """Paper-claim-versus-measured record for one experiment (EXPERIMENTS.md rows)."""

    experiment: str
    claim: str
    measured: Dict[str, float] = field(default_factory=dict)
    verdict: str = ""

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps({
            "experiment": self.experiment,
            "claim": self.claim,
            "measured": self.measured,
            "verdict": self.verdict,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        """Parse a JSON string produced by :meth:`to_json`."""
        payload = json.loads(text)
        return cls(experiment=payload["experiment"], claim=payload["claim"],
                   measured=dict(payload.get("measured", {})),
                   verdict=payload.get("verdict", ""))


__all__ = ["SweepRecord", "ExperimentRecord"]
