"""Plain-text table formatting for benchmark and experiment output.

Every benchmark prints the rows the corresponding paper claim refers to;
:func:`format_table` keeps that output aligned and readable without pulling in
any dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_value(value: Cell, precision: int = 4) -> str:
    """Format one cell: floats in engineering-friendly general format."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 4) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column headings.
    rows:
        Iterable of rows; each row must have the same length as ``headers``.
    title:
        Optional title line printed above the table.
    precision:
        Significant digits used for floating-point cells.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append([format_value(cell, precision) for cell in row])

    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[column])
                         for column, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                title: Optional[str] = None, precision: int = 4) -> None:
    """Format and print a table (convenience for benchmarks and examples)."""
    print(format_table(headers, rows, title=title, precision=precision))


__all__ = ["format_table", "format_value", "print_table"]
