"""Result containers, the content-hash result cache, and table formatting."""

from .results import (
    CACHE_FORMAT_VERSION,
    ExperimentRecord,
    ResultCache,
    SweepRecord,
    content_hash,
)
from .tables import format_table, format_value, print_table

__all__ = ["CACHE_FORMAT_VERSION", "ExperimentRecord", "ResultCache",
           "SweepRecord", "content_hash", "format_table", "format_value",
           "print_table"]
