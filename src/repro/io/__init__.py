"""Result containers and table formatting."""

from .results import ExperimentRecord, SweepRecord
from .tables import format_table, format_value, print_table

__all__ = ["ExperimentRecord", "SweepRecord", "format_table", "format_value",
           "print_table"]
