"""Design-space studio: device scans, tolerance Monte-Carlo, feasibility maps.

The paper's single-electron devices only work inside narrow windows of
capacitance, resistance, temperature, and background charge.  This package
turns the reproduction into a *design tool*: declare a
:class:`~repro.design.spec.DesignSpec` (base device, swept
geometry/environment axes, constraint set, optional component tolerances),
run it through any registered engine with :class:`~repro.design.scan.DeviceScan`,
and read off a :class:`~repro.design.feasibility.FeasibilityMap` of
per-point verdicts, robustness margins, and tolerance-MC yield.

Quick start::

    from repro.design import DesignSpec, DeviceScan

    spec = DesignSpec.from_dict({
        "name": "demo",
        "axes": [{"parameter": "gate_capacitance",
                  "start": 5e-19, "stop": 5e-18, "points": 21,
                  "spacing": "log"}],
        "constraints": [{"type": "gain", "threshold": 1.0},
                        {"type": "on_off_ratio", "threshold": 10.0}],
    })
    feasibility = DeviceScan(spec).run()
    print(feasibility.counts(), feasibility.feasible_fraction)

Scans shard into content-hashed checkpoint chunks through the result cache
(resume + dedup), degrade per-point under a
:class:`~repro.resilience.policy.FailurePolicy`, and are reproducible for
any worker count thanks to SHA-256-derived per-point and per-element seed
streams.  See ``docs/design.md``.
"""

from .constraints import (
    CONSTRAINT_TYPES,
    Constraint,
    ConstraintVerdict,
    DesignPoint,
    build_constraint,
    build_constraints,
)
from .feasibility import (
    FEASIBLE,
    INFEASIBLE,
    UNKNOWN,
    FeasibilityMap,
    merge_chunk_payloads,
)
from .scan import (
    DesignChunk,
    DeviceScan,
    YieldReport,
    analyze_yield,
    derive_point_seed,
    resolve_engine,
)
from .spec import (
    DEVICE_PARAMETERS,
    ENVIRONMENT_PARAMETERS,
    SCAN_PARAMETERS,
    DesignSpec,
    DeviceAxis,
)
from .tolerance import (
    ComponentDeviation,
    ToleranceModel,
    derive_element_seed,
)

__all__ = [
    "CONSTRAINT_TYPES",
    "ComponentDeviation",
    "Constraint",
    "ConstraintVerdict",
    "DEVICE_PARAMETERS",
    "DesignChunk",
    "DesignPoint",
    "DesignSpec",
    "DeviceAxis",
    "DeviceScan",
    "ENVIRONMENT_PARAMETERS",
    "FEASIBLE",
    "FeasibilityMap",
    "INFEASIBLE",
    "SCAN_PARAMETERS",
    "ToleranceModel",
    "UNKNOWN",
    "YieldReport",
    "analyze_yield",
    "build_constraint",
    "build_constraints",
    "derive_element_seed",
    "derive_point_seed",
    "merge_chunk_payloads",
    "resolve_engine",
]
