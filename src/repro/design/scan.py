"""Device scans: checkpointed feasibility classification over design grids.

A :class:`DeviceScan` executes one :class:`~repro.design.spec.DesignSpec`:
it walks the Cartesian device/environment grid in row-major order, builds
the concrete device at every point, runs the on/off operating points
through the bound :class:`~repro.engines.base.Session` of any registered
engine, classifies the point against the spec's constraint set, and (when
the spec declares component tolerances) estimates the per-point
Monte-Carlo yield.  The result is a
:class:`~repro.design.feasibility.FeasibilityMap`.

Execution discipline mirrors the resilience layer:

* the grid is sharded into fixed-size **chunks**, each persisted through a
  :class:`~repro.io.results.ResultCache` under a content hash of
  everything that determines its numbers — a killed scan resumes
  bit-identically, and identical chunks across scans dedup;
* per-point failures **degrade** under an optional
  :class:`~repro.resilience.policy.FailurePolicy` (unknown verdict, NaN
  margins, ``failed`` status) instead of aborting the scan; a chunk-level
  crash under policy yields a *partial* map whose missing chunk stays
  uncached, so a re-run recomputes exactly that chunk;
* stochastic engines get SHA-256-derived per-point seeds
  (:func:`derive_point_seed`) and the tolerance model draws from
  per-element seed streams — both independent of iteration order and
  worker count, so any execution schedule produces the same map.
"""

from __future__ import annotations

import hashlib
import logging
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import E_CHARGE
from ..devices.set_transistor import SETTransistor
from ..engines.base import BiasPoint, Engine
from ..errors import ValidationError
from ..io.results import ResultCache, content_hash
from ..resilience.faults import inject
from ..resilience.policy import FailurePolicy
from .constraints import Constraint, DesignPoint, build_constraints
from .feasibility import (
    FEASIBLE,
    INFEASIBLE,
    UNKNOWN,
    FeasibilityMap,
    merge_chunk_payloads,
)
from .spec import DEVICE_PARAMETERS, DesignSpec
from .tolerance import ToleranceModel

_LOG = logging.getLogger("repro.design")


def derive_point_seed(root_seed: int, flat_index: int) -> int:
    """Deterministic per-point engine seed for stochastic scans.

    Parameters
    ----------
    root_seed:
        The design spec's root seed.
    flat_index:
        Row-major grid index of the point.

    Returns
    -------
    int
        A 32-bit seed — SHA-256 of ``"{root_seed}:design-point:{flat}"`` —
        stable across processes and independent of execution order (the
        ``design-point`` token keeps the stream disjoint from the
        checkpoint layer's per-chunk seeds).
    """
    token = f"{root_seed}:design-point:{flat_index}"
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:4], "big")


def resolve_engine(name: str) -> Engine:
    """Resolve a spec's engine name to an engine instance.

    Parameters
    ----------
    name:
        A registered engine name, or ``"auto"`` to pick by capability
        introspection: the cheapest *available* engine, deterministic
        engines first (device grids want closed-form throughput, not
        per-point statistics).

    Returns
    -------
    Engine
        The resolved engine.
    """
    from ..engines import get_engine, list_engines

    if name != "auto":
        return get_engine(name)
    candidates = [engine for engine in list_engines()
                  if engine.capabilities().available]
    if not candidates:
        raise ValidationError("no available engine to auto-select")
    candidates.sort(key=lambda engine: (
        engine.capabilities().stochastic,
        engine.capabilities().cost.per_point_s,
        engine.name))
    return candidates[0]


@dataclass(frozen=True)
class DesignChunk:
    """One content-addressed unit of a design scan.

    Parameters
    ----------
    index:
        Chunk ordinal (0-based).
    start:
        Flat grid index of the chunk's first point.
    count:
        Number of grid points in the chunk.
    key:
        Cache key the chunk's payload is stored under (empty when the scan
        runs without a cache).
    """

    index: int
    start: int
    count: int
    key: str


class _PointEvaluator:
    """Evaluates single grid points of one spec against one engine.

    Precomputes everything loop-invariant — axis grids, the constraint
    set, the tolerance model, capability flags — so the per-point work is
    just device construction, the engine solves, and the verdicts.
    """

    def __init__(self, spec: DesignSpec, engine: Engine) -> None:
        self.spec = spec
        self.engine = engine
        self.constraints: Tuple[Constraint, ...] = \
            build_constraints(spec.constraints)
        self.hard = tuple(c for c in self.constraints if c.kind == "hard")
        self.needs_currents = any(c.requires_currents
                                  for c in self.constraints)
        self.yield_needs_currents = any(c.requires_currents
                                        for c in self.hard)
        capabilities = engine.capabilities()
        self.stochastic = capabilities.stochastic
        self.tolerance = ToleranceModel.from_dict(spec.tolerances)
        self.base = spec.base_device()
        self.grids = [axis.grid() for axis in spec.axes]
        self.parameters = [axis.parameter for axis in spec.axes]
        # Row-major strides: first axis varies slowest.
        self.strides: List[int] = []
        stride = 1
        for grid in reversed(self.grids):
            self.strides.insert(0, stride)
            stride *= len(grid)

    # ------------------------------------------------------------- geometry

    def point_overrides(self, flat_index: int) -> Dict[str, float]:
        """Swept parameter values at one flat index (row-major)."""
        overrides = {}
        remainder = flat_index
        for parameter, grid, stride in zip(self.parameters, self.grids,
                                           self.strides):
            position, remainder = divmod(remainder, stride)
            overrides[parameter] = float(grid[position])
        return overrides

    def point_inputs(self, flat_index: int
                     ) -> Tuple[SETTransistor, float, float,
                                Optional[float]]:
        """``(device, temperature, drain_voltage, background_charge)``."""
        overrides = self.point_overrides(flat_index)
        temperature = overrides.pop("temperature", self.spec.temperature)
        drain_voltage = overrides.pop("drain_voltage",
                                      self.spec.drain_voltage)
        charge_e = overrides.pop("background_charge_e", None)
        background = None if charge_e is None else charge_e * E_CHARGE
        device = replace(self.base, **overrides) if overrides else self.base
        return device, float(temperature), float(drain_voltage), background

    # ------------------------------------------------------------ evaluation

    def solve_currents(self, device: SETTransistor, temperature: float,
                       drain_voltage: float,
                       background_charge: Optional[float],
                       seed: Optional[int]) -> Tuple[float, float]:
        """On/off drain currents of one concrete device."""
        budget = self.spec.budget
        session = self.engine.bind(device, temperature=temperature,
                                   seed=seed,
                                   background_charge=background_charge,
                                   max_events=budget.max_events,
                                   warmup_events=budget.warmup_events,
                                   replicas=budget.replicas)
        period = device.gate_period
        on = session.solve(BiasPoint(self.spec.on_gate_fraction * period,
                                     drain_voltage)).current
        off = session.solve(BiasPoint(self.spec.off_gate_fraction * period,
                                      drain_voltage)).current
        return float(on), float(off)

    def classify(self, device: SETTransistor, temperature: float,
                 drain_voltage: float, on: float,
                 off: float) -> Dict[str, Any]:
        """Run the constraint set over one evaluated device."""
        point = DesignPoint(device=device, temperature=temperature,
                            drain_voltage=drain_voltage, on_current=on,
                            off_current=off)
        verdicts = [constraint.evaluate(point)
                    for constraint in self.constraints]
        hard = [v for v, c in zip(verdicts, self.constraints)
                if c.kind == "hard"]
        if any(not v.satisfied and math.isfinite(v.margin) for v in hard):
            code = INFEASIBLE
        elif any(not math.isfinite(v.margin) for v in hard):
            code = UNKNOWN
        else:
            code = FEASIBLE
        finite = [v.margin for v in hard if math.isfinite(v.margin)]
        robustness = min(finite) if finite and code != UNKNOWN else math.nan
        return {"verdict": code, "robustness": robustness,
                "margins": [v.margin for v in verdicts],
                "verdicts": verdicts}

    def is_feasible(self, device: SETTransistor, temperature: float,
                    drain_voltage: float,
                    background_charge: Optional[float],
                    seed: Optional[int]) -> bool:
        """Whether one concrete device satisfies every hard constraint."""
        on = off = math.nan
        if self.yield_needs_currents:
            on, off = self.solve_currents(device, temperature,
                                          drain_voltage, background_charge,
                                          seed)
        point = DesignPoint(device=device, temperature=temperature,
                            drain_voltage=drain_voltage, on_current=on,
                            off_current=off)
        return all(constraint.evaluate(point).satisfied
                   for constraint in self.hard)

    def point_yield(self, flat_index: int) -> float:
        """Per-point tolerance-MC yield in ``[0, 1]``.

        Each sample deviates the point's device through the spec's
        tolerance model (per-element SHA-256 seed streams — the draws are
        common random numbers across grid points, so neighbouring points
        see the same component lot) and re-checks the hard constraints.
        """
        device, temperature, drain_voltage, background = \
            self.point_inputs(flat_index)
        seed = derive_point_seed(self.spec.seed, flat_index) \
            if self.stochastic else None
        feasible = 0
        for sample in range(self.spec.tolerance_samples):
            try:
                deviated = self.tolerance.sample_device(
                    device, self.spec.seed, sample)
                if self.is_feasible(deviated, temperature, drain_voltage,
                                    background, seed):
                    feasible += 1
            except Exception:  # noqa: BLE001 - an unbuildable deviated
                # device (e.g. a tolerance band crossing zero capacitance)
                # is an infeasible sample, not a scan abort.
                continue
        return feasible / self.spec.tolerance_samples

    def evaluate(self, flat_index: int) -> Dict[str, Any]:
        """Fully evaluate one grid point (constraints + optional yield)."""
        inject("design.point")
        device, temperature, drain_voltage, background = \
            self.point_inputs(flat_index)
        on = off = math.nan
        if self.needs_currents:
            seed = derive_point_seed(self.spec.seed, flat_index) \
                if self.stochastic else None
            on, off = self.solve_currents(device, temperature,
                                          drain_voltage, background, seed)
        outcome = self.classify(device, temperature, drain_voltage, on, off)
        outcome["on_current"] = on
        outcome["off_current"] = off
        if self.tolerance:
            outcome["yield"] = self.point_yield(flat_index)
        return outcome


def _unknown_point(n_constraints: int, with_yield: bool) -> Dict[str, Any]:
    """The payload slot of a failed/skipped point."""
    outcome: Dict[str, Any] = {
        "verdict": UNKNOWN, "robustness": math.nan,
        "margins": [math.nan] * n_constraints,
        "on_current": math.nan, "off_current": math.nan}
    if with_yield:
        outcome["yield"] = math.nan
    return outcome


class DeviceScan:
    """A checkpointed, policy-aware feasibility scan of one design spec.

    Parameters
    ----------
    spec:
        The design spec to execute.
    cache:
        Optional :class:`~repro.io.results.ResultCache` for chunk
        checkpoints; ``None`` disables persistence (no resume, no dedup).
    policy:
        Optional :class:`~repro.resilience.policy.FailurePolicy`.  With a
        policy, point failures retry up to ``max_retries`` times and then
        degrade to an ``unknown`` verdict; at most ``max_failures``
        degraded points are tolerated per chunk before the chunk's
        remaining points are marked ``skipped``; a chunk-level crash marks
        the whole chunk ``skipped`` (and uncached) instead of aborting.
        Without a policy, the first failure propagates — but completed
        chunks stay persisted, so a re-run resumes.
    """

    def __init__(self, spec: DesignSpec, *,
                 cache: Optional[ResultCache] = None,
                 policy: Optional[FailurePolicy] = None) -> None:
        self.spec = spec
        self.cache = cache
        self.policy = policy
        self.engine = resolve_engine(spec.engine)
        self._evaluator = _PointEvaluator(spec, self.engine)
        #: Chunks recomputed / served from cache / lost to a chunk-level
        #: failure during the last :meth:`run` call.
        self.chunks_computed = 0
        self.chunks_resumed = 0
        self.chunks_failed = 0

    # ------------------------------------------------------------- identity

    def _chunk_context(self, start: int, count: int) -> Dict[str, Any]:
        """Everything that determines one chunk's numbers, JSON-able."""
        return {
            "kind": "design-chunk",
            "spec": self.spec.to_dict(),
            "engine": self.engine.name,
            "start": start,
            "count": count,
            "policy": None if self.policy is None
            else self.policy.as_dict(),
        }

    def chunk_plan(self) -> List[DesignChunk]:
        """The scan's chunks, in order, with their cache keys."""
        total = len(self.spec)
        chunks: List[DesignChunk] = []
        for ordinal, start in enumerate(range(0, total,
                                              self.spec.chunk_size)):
            count = min(self.spec.chunk_size, total - start)
            key = ""
            if self.cache is not None:
                key = self.cache.key_for(
                    content_hash(self._chunk_context(start, count)))
            chunks.append(DesignChunk(index=ordinal, start=start,
                                      count=count, key=key))
        return chunks

    # ------------------------------------------------------------ execution

    def _compute_chunk(self, start: int, count: int) -> Dict[str, Any]:
        """Evaluate one chunk's points and assemble its payload."""
        inject("design.chunk")
        evaluator = self._evaluator
        n_constraints = len(evaluator.constraints)
        with_yield = bool(evaluator.tolerance)
        policy = self.policy
        outcomes: List[Dict[str, Any]] = []
        statuses: List[str] = []
        failures = 0
        give_up = False
        for flat_index in range(start, start + count):
            if give_up:
                outcomes.append(_unknown_point(n_constraints, with_yield))
                statuses.append("skipped")
                continue
            if policy is None:
                outcomes.append(evaluator.evaluate(flat_index))
                statuses.append("ok")
                continue
            attempts = 1 + policy.max_retries
            outcome: Optional[Dict[str, Any]] = None
            for attempt in range(attempts):
                try:
                    outcome = evaluator.evaluate(flat_index)
                    break
                except Exception as error:  # noqa: BLE001 - policy run
                    _LOG.debug("design point %d attempt %d failed: %r",
                               flat_index, attempt + 1, error)
            if outcome is None:
                failures += 1
                outcomes.append(_unknown_point(n_constraints, with_yield))
                statuses.append("failed")
                if policy.max_failures is not None \
                        and failures > policy.max_failures:
                    give_up = True
            else:
                outcomes.append(outcome)
                statuses.append("ok")
        payload: Dict[str, Any] = {
            "engine": self.engine.name,
            "start": start,
            "verdicts": [o["verdict"] for o in outcomes],
            "robustness": [o["robustness"] for o in outcomes],
            "margins": [[o["margins"][row] for o in outcomes]
                        for row in range(n_constraints)],
            "on_currents": [o["on_current"] for o in outcomes],
            "off_currents": [o["off_current"] for o in outcomes],
            "statuses": statuses,
        }
        if with_yield:
            payload["yields"] = [o["yield"] for o in outcomes]
        return payload

    def _valid_payload(self, chunk: DesignChunk,
                       payload: Optional[Mapping]) -> bool:
        """Whether a cached payload is shaped like this chunk's result."""
        if payload is None:
            return False
        verdicts = payload.get("verdicts")
        if not isinstance(verdicts, list) or len(verdicts) != chunk.count:
            return False
        margins = payload.get("margins")
        if not isinstance(margins, list) \
                or len(margins) != len(self._evaluator.constraints):
            return False
        return payload.get("engine") == self.engine.name

    def run(self, *, workers: int = 1) -> FeasibilityMap:
        """Run (or resume) the scan and return its feasibility map.

        Parameters
        ----------
        workers:
            Worker processes for chunk fan-out (``1`` = in-process).  The
            map is identical for any worker count: every chunk is a pure
            function of ``(spec, start, count)``.

        Returns
        -------
        FeasibilityMap
            The merged map; bit-identical whether or not the run resumed
            from checkpoints, and partial (``unknown`` verdicts,
            ``skipped`` statuses) when chunks were lost under the policy.
        """
        self.chunks_computed = 0
        self.chunks_resumed = 0
        self.chunks_failed = 0
        plan = self.chunk_plan()
        payloads: Dict[int, Mapping[str, Any]] = {}
        pending: List[DesignChunk] = []
        for chunk in plan:
            cached = None if self.cache is None \
                else self.cache.load(chunk.key)
            if self._valid_payload(chunk, cached):
                assert cached is not None
                payloads[chunk.start] = cached
                self.chunks_resumed += 1
                _LOG.info("design: resumed chunk %d [%s]", chunk.index,
                          chunk.key[:12])
            else:
                pending.append(chunk)
        if workers > 1 and len(pending) > 1:
            self._compute_parallel(pending, payloads, workers)
        else:
            for chunk in pending:
                payload = self._guarded_compute(chunk)
                if payload is not None:
                    payloads[chunk.start] = payload
        merged = merge_chunk_payloads(
            [payloads[start] for start in sorted(payloads)], len(self.spec))
        constraints = tuple(
            {"name": c.type_name, "kind": c.kind, "threshold": c.threshold}
            for c in self._evaluator.constraints)
        return FeasibilityMap(
            spec_hash=self.spec.content_hash(), engine=self.engine.name,
            axes=tuple((axis.parameter, tuple(axis.grid().tolist()))
                       for axis in self.spec.axes),
            constraints=constraints,
            chunks_computed=self.chunks_computed,
            chunks_resumed=self.chunks_resumed, **merged)

    def _guarded_compute(self,
                         chunk: DesignChunk) -> Optional[Dict[str, Any]]:
        """Compute one chunk, honouring the chunk-level failure contract."""
        try:
            payload = self._compute_chunk(chunk.start, chunk.count)
        except Exception:
            if self.policy is None:
                raise
            self.chunks_failed += 1
            _LOG.warning("design: chunk %d lost under policy; the map "
                         "will be partial", chunk.index)
            return None
        self._store(chunk, payload)
        self.chunks_computed += 1
        return payload

    def _compute_parallel(self, pending: Sequence[DesignChunk],
                          payloads: Dict[int, Mapping[str, Any]],
                          workers: int) -> None:
        """Fan pending chunks out over a process pool."""
        spec_payload = self.spec.to_dict()
        policy_payload = None if self.policy is None \
            else self.policy.as_dict()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    (chunk, pool.submit(_compute_chunk_worker, spec_payload,
                                        policy_payload, chunk.start,
                                        chunk.count))
                    for chunk in pending]
                for chunk, future in futures:
                    try:
                        payload = future.result()
                    except Exception:
                        if self.policy is None:
                            raise
                        self.chunks_failed += 1
                        continue
                    payloads[chunk.start] = payload
                    self._store(chunk, payload)
                    self.chunks_computed += 1
        except Exception:
            if self.policy is None:
                raise
            # Pool-level breakage (e.g. a crashed worker) degrades to the
            # serial path for whatever is still missing.
            for chunk in pending:
                if chunk.start not in payloads:
                    payload = self._guarded_compute(chunk)
                    if payload is not None:
                        payloads[chunk.start] = payload

    def _store(self, chunk: DesignChunk, payload: Dict[str, Any]) -> None:
        """Persist one finished chunk (no-op without a cache)."""
        if self.cache is not None:
            self.cache.store(chunk.key, payload)


def _compute_chunk_worker(spec_payload: Mapping, policy_payload: Optional[
        Mapping], start: int, count: int) -> Dict[str, Any]:
    """Process-pool entry point: rebuild the scan and compute one chunk."""
    spec = DesignSpec.from_dict(spec_payload)
    policy = None if policy_payload is None \
        else FailurePolicy(**dict(policy_payload))
    scan = DeviceScan(spec, cache=None, policy=policy)
    return scan._compute_chunk(start, count)


@dataclass(frozen=True)
class YieldReport:
    """Tolerance analysis of one design point: sampled yield plus corners.

    Parameters
    ----------
    point:
        The swept parameter values of the analysed grid point.
    samples:
        Monte-Carlo sample count.
    feasible_samples:
        Samples satisfying every hard constraint.
    yield_fraction:
        ``feasible_samples / samples``.
    corners:
        One entry per worst-case corner: the element assignment and
        whether the corner device stayed feasible.
    worst_case_feasible:
        Whether *every* corner stayed feasible (the classic worst-case
        pass/fail; stricter than any sampled yield).
    """

    point: Mapping[str, float]
    samples: int
    feasible_samples: int
    yield_fraction: float
    corners: Tuple[Mapping[str, Any], ...]
    worst_case_feasible: bool

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able payload of the report."""
        return {"point": dict(self.point), "samples": self.samples,
                "feasible_samples": self.feasible_samples,
                "yield_fraction": self.yield_fraction,
                "corners": [dict(c) for c in self.corners],
                "worst_case_feasible": self.worst_case_feasible}


def analyze_yield(spec: DesignSpec, flat_index: int = 0) -> YieldReport:
    """Full tolerance analysis of one grid point of a design spec.

    Parameters
    ----------
    spec:
        The design spec (must declare tolerances).
    flat_index:
        Row-major grid index of the point to analyse.

    Returns
    -------
    YieldReport
        Seeded Monte-Carlo yield plus the worst-case corner sweep.
    """
    evaluator = _PointEvaluator(spec, resolve_engine(spec.engine))
    if not evaluator.tolerance:
        raise ValidationError(
            "yield analysis needs a spec with component tolerances")
    device, temperature, drain_voltage, background = \
        evaluator.point_inputs(flat_index)
    seed = derive_point_seed(spec.seed, flat_index) \
        if evaluator.stochastic else None
    feasible = 0
    for sample in range(spec.tolerance_samples):
        try:
            deviated = evaluator.tolerance.sample_device(device, spec.seed,
                                                         sample)
            if evaluator.is_feasible(deviated, temperature, drain_voltage,
                                     background, seed):
                feasible += 1
        except Exception:  # noqa: BLE001 - unbuildable sample = infeasible
            continue
    corners: List[Dict[str, Any]] = []
    worst_case = True
    for assignment, corner_device in \
            evaluator.tolerance.corner_devices(device):
        try:
            corner_ok = evaluator.is_feasible(corner_device, temperature,
                                              drain_voltage, background,
                                              seed)
        except Exception:  # noqa: BLE001 - unbuildable corner = infeasible
            corner_ok = False
        worst_case = worst_case and corner_ok
        corners.append({"assignment": dict(assignment),
                        "feasible": corner_ok})
    return YieldReport(
        point=evaluator.point_overrides(flat_index),
        samples=spec.tolerance_samples, feasible_samples=feasible,
        yield_fraction=feasible / spec.tolerance_samples,
        corners=tuple(corners), worst_case_feasible=worst_case)


__all__ = [
    "DesignChunk",
    "DeviceScan",
    "YieldReport",
    "analyze_yield",
    "derive_point_seed",
    "resolve_engine",
]
