"""Constraint classes a design scan classifies grid points against.

Two constraint *kinds*, in the spirit of structured assurance claims:

* **hard** constraints decide feasibility — every hard constraint must be
  satisfied for a grid point to count as a feasible design (intrinsic
  voltage gain above a threshold, on/off current ratio, maximum operating
  temperature above the operating point, on-current floor);
* **diagnostic** constraints never veto a point — they contribute margin
  metrics (e.g. Coulomb-oscillation modulation depth) that quantify *how
  comfortably* a feasible point sits inside the window.

Every constraint evaluates one :class:`DesignPoint` to a
:class:`ConstraintVerdict` carrying the measured value, the threshold, a
boolean, and a signed dimensionless **margin** (positive = satisfied with
room; the feasibility map's robustness margin is the minimum hard-constraint
margin per point).  Constraints serialise to the plain dicts stored inside
:class:`~repro.design.spec.DesignSpec`, so the set is part of the spec's
content hash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..devices.set_transistor import SETTransistor
from ..errors import ValidationError

#: The two constraint kinds.
KINDS = ("hard", "diagnostic")

#: Floor used when normalising ratios so a zero off-current cannot divide
#: by zero (well below any physical SET current in ampere).
_CURRENT_FLOOR = 1e-30


@dataclass(frozen=True)
class DesignPoint:
    """Everything a constraint may look at for one grid point.

    Parameters
    ----------
    device:
        The concrete device at this grid point (axis overrides applied).
    temperature:
        Operating temperature in kelvin.
    drain_voltage:
        Drain bias of the on/off operating points in volt.
    on_current, off_current:
        Drain current at the conducting / blockaded gate bias in ampere
        (``nan`` when the scan skipped the engine solve — e.g. the point
        failed under the failure policy, or no constraint needed currents).
    """

    device: SETTransistor
    temperature: float
    drain_voltage: float
    on_current: float = math.nan
    off_current: float = math.nan


@dataclass(frozen=True)
class ConstraintVerdict:
    """Outcome of one constraint at one design point.

    Parameters
    ----------
    name:
        Constraint type name (registry key, e.g. ``"gain"``).
    kind:
        ``"hard"`` or ``"diagnostic"``.
    value:
        The measured quantity (``nan`` when unknown).
    threshold:
        The threshold it was compared against.
    satisfied:
        Whether the constraint holds (always ``False`` when unknown).
    margin:
        Signed dimensionless margin; positive iff satisfied, ``nan`` when
        unknown.  Ratio-like constraints use decades
        (``log10(value / threshold)``), linear ones a threshold-relative
        difference.
    """

    name: str
    kind: str
    value: float
    threshold: float
    satisfied: bool
    margin: float

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "kind": self.kind, "value": self.value,
                "threshold": self.threshold, "satisfied": self.satisfied,
                "margin": self.margin}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ConstraintVerdict":
        """Rebuild a verdict from its plain-dict form."""
        return cls(name=str(payload["name"]), kind=str(payload["kind"]),
                   value=float(payload["value"]),
                   threshold=float(payload["threshold"]),
                   satisfied=bool(payload["satisfied"]),
                   margin=float(payload["margin"]))

    @classmethod
    def unknown(cls, name: str, kind: str,
                threshold: float) -> "ConstraintVerdict":
        """The NaN verdict recorded for failed/skipped grid points."""
        return cls(name=name, kind=kind, value=math.nan,
                   threshold=threshold, satisfied=False, margin=math.nan)


class Constraint:
    """Base class of all design constraints.

    Subclasses set the class attributes ``type_name`` (registry key),
    ``default_kind``, and ``requires_currents`` (whether evaluation needs
    the engine-computed on/off currents), and implement :meth:`measure`.
    """

    type_name = ""
    default_kind = "hard"
    #: Whether :meth:`measure` reads ``on_current`` / ``off_current`` —
    #: scans skip the engine solves entirely when no constraint does.
    requires_currents = False

    def __init__(self, threshold: float, kind: Optional[str] = None) -> None:
        """Store the threshold and the (possibly overridden) kind."""
        self.threshold = float(threshold)
        self.kind = self.default_kind if kind is None else str(kind)
        if self.kind not in KINDS:
            raise ValidationError(
                f"constraint kind must be one of {KINDS}, got {self.kind!r}")

    # ------------------------------------------------------------- protocol

    def measure(self, point: DesignPoint) -> Tuple[float, float]:
        """Return ``(value, margin)`` for one design point."""
        raise NotImplementedError

    def evaluate(self, point: DesignPoint) -> ConstraintVerdict:
        """Classify one design point.

        Parameters
        ----------
        point:
            The grid point under evaluation.

        Returns
        -------
        ConstraintVerdict
            Unknown (NaN value/margin, unsatisfied) when the measured value
            is not finite; otherwise satisfied iff ``margin >= 0``.
        """
        value, margin = self.measure(point)
        if not math.isfinite(value) or not math.isfinite(margin):
            return ConstraintVerdict.unknown(self.type_name, self.kind,
                                             self.threshold)
        return ConstraintVerdict(name=self.type_name, kind=self.kind,
                                 value=value, threshold=self.threshold,
                                 satisfied=margin >= 0.0, margin=margin)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical declaration dict (what :class:`DesignSpec` stores)."""
        return {"type": self.type_name, "kind": self.kind,
                "threshold": self.threshold}


class GainConstraint(Constraint):
    """Hard constraint: intrinsic voltage gain ``C_g / C_j >= threshold``.

    The paper's logic-family argument needs gain above one for signal
    restoration; the margin is the threshold-relative excess
    ``(gain - threshold) / threshold``.
    """

    type_name = "gain"

    def measure(self, point: DesignPoint) -> Tuple[float, float]:
        """Gain and its threshold-relative margin (closed form, no engine)."""
        value = point.device.voltage_gain
        scale = max(abs(self.threshold), 1e-12)
        return value, (value - self.threshold) / scale


class OnOffRatioConstraint(Constraint):
    """Hard constraint: on/off drain-current ratio ``>= threshold``.

    The margin is measured in decades, ``log10(ratio / threshold)``, so a
    margin of 1.0 means one order of magnitude of slack.
    """

    type_name = "on_off_ratio"
    requires_currents = True

    def measure(self, point: DesignPoint) -> Tuple[float, float]:
        """On/off ratio and its margin in decades."""
        on = abs(point.on_current)
        off = max(abs(point.off_current), _CURRENT_FLOOR)
        if not math.isfinite(on) or not math.isfinite(off):
            return math.nan, math.nan
        ratio = on / off
        if ratio <= 0.0 or self.threshold <= 0.0:
            return ratio, math.nan
        return ratio, math.log10(ratio / self.threshold)


class MaxTemperatureConstraint(Constraint):
    """Hard constraint: the blockade survives at the operating temperature.

    The measured value is the device's maximum operating temperature
    ``e^2 / (2 C_sigma k_B margin)``; it must exceed the *operating*
    temperature times ``threshold`` (a safety factor, default 1.0).  The
    margin is in decades of temperature headroom.
    """

    type_name = "max_temperature"

    def __init__(self, threshold: float = 1.0, kind: Optional[str] = None,
                 kt_margin: float = 40.0) -> None:
        """Store the safety factor and the ``E_C / kT`` design margin."""
        super().__init__(threshold, kind)
        self.kt_margin = float(kt_margin)
        if self.kt_margin <= 0.0:
            raise ValidationError("max_temperature kt_margin must be > 0")

    def measure(self, point: DesignPoint) -> Tuple[float, float]:
        """Maximum operating temperature and its headroom in decades."""
        value = point.device.max_operating_temperature(margin=self.kt_margin)
        required = self.threshold * point.temperature
        if value <= 0.0 or required <= 0.0:
            return value, math.nan
        return value, math.log10(value / required)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical declaration dict including the ``kt_margin`` knob."""
        payload = super().to_dict()
        payload["kt_margin"] = self.kt_margin
        return payload


class OnCurrentConstraint(Constraint):
    """Hard constraint: on-state drain current ``|I_on| >= threshold``.

    Guards against designs whose tunnel resistances are so large the device
    is technically "on" but drives no measurable current; margin in decades.
    """

    type_name = "on_current"
    requires_currents = True

    def measure(self, point: DesignPoint) -> Tuple[float, float]:
        """On-current magnitude and its margin in decades."""
        value = abs(point.on_current)
        if not math.isfinite(value):
            return math.nan, math.nan
        if value <= 0.0 or self.threshold <= 0.0:
            return value, math.nan
        return value, math.log10(value / self.threshold)


class ModulationDepthConstraint(Constraint):
    """Diagnostic constraint: Coulomb-oscillation modulation depth.

    ``(|I_on| - |I_off|) / (|I_on| + |I_off|)`` in ``[-1, 1]``; the linear
    margin is ``value - threshold``.  Diagnostic by default — it grades
    how sharply the device modulates without vetoing feasibility.
    """

    type_name = "modulation_depth"
    default_kind = "diagnostic"
    requires_currents = True

    def measure(self, point: DesignPoint) -> Tuple[float, float]:
        """Modulation depth and its linear margin."""
        on = abs(point.on_current)
        off = abs(point.off_current)
        if not math.isfinite(on) or not math.isfinite(off):
            return math.nan, math.nan
        total = on + off
        if total <= 0.0:
            return math.nan, math.nan
        value = (on - off) / total
        return value, value - self.threshold


#: Registry of constraint types by declaration ``type`` name.
CONSTRAINT_TYPES: Dict[str, type] = {
    cls.type_name: cls
    for cls in (GainConstraint, OnOffRatioConstraint,
                MaxTemperatureConstraint, OnCurrentConstraint,
                ModulationDepthConstraint)
}


def build_constraint(payload: Mapping) -> Constraint:
    """Instantiate one constraint from its declaration dict.

    Parameters
    ----------
    payload:
        A declaration such as ``{"type": "gain", "threshold": 2.0}``;
        optional keys: ``kind`` (override hard/diagnostic) and any
        type-specific knobs (``kt_margin`` for ``max_temperature``).

    Returns
    -------
    Constraint
        The constraint instance.
    """
    if "type" not in payload:
        raise ValidationError(
            f"constraint declaration needs a 'type' key: {dict(payload)!r}")
    type_name = str(payload["type"])
    if type_name not in CONSTRAINT_TYPES:
        raise ValidationError(
            f"unknown constraint type {type_name!r}; choose from "
            f"{sorted(CONSTRAINT_TYPES)}")
    cls = CONSTRAINT_TYPES[type_name]
    kwargs = {str(key): value for key, value in payload.items()
              if key != "type"}
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise ValidationError(
            f"invalid {type_name!r} constraint declaration: {error}") \
            from None


def build_constraints(payloads: Sequence[Mapping]) -> Tuple[Constraint, ...]:
    """Instantiate an ordered constraint set from declaration dicts."""
    constraints = tuple(build_constraint(payload) for payload in payloads)
    names = [c.type_name for c in constraints]
    if len(set(names)) != len(names):
        raise ValidationError(
            f"duplicate constraint types in design spec: {sorted(names)}")
    return constraints


__all__ = [
    "CONSTRAINT_TYPES",
    "Constraint",
    "ConstraintVerdict",
    "DesignPoint",
    "GainConstraint",
    "KINDS",
    "MaxTemperatureConstraint",
    "ModulationDepthConstraint",
    "OnCurrentConstraint",
    "OnOffRatioConstraint",
    "build_constraint",
    "build_constraints",
]
