"""Component-tolerance model: per-element deviations, corners, seed streams.

Fabricated single-electron devices never hit their nominal capacitances and
resistances; a design point is only *usable* if it stays feasible under the
spread of its components.  This module models that spread the way SPICE
worst-case/Monte-Carlo harnesses do:

* a :class:`ComponentDeviation` per device parameter — a relative tolerance
  (``±10 %``), absolute min/max bounds, or no deviation — with a uniform or
  clipped-normal sampling distribution;
* **worst-case corners**: the Cartesian product of every element's extreme
  values (the classic corner analysis);
* **seeded sampling**: Monte-Carlo samples where each element draws from its
  *own* SHA-256-derived seed stream (:func:`derive_element_seed`, the same
  discipline as the checkpoint layer's per-chunk seeds).  Sample ``i`` of
  element ``e`` is a pure function of ``(root seed, e, i)`` — never of axis
  iteration order, worker count, or how many other elements are toleranced —
  so tolerance-MC yield is bit-reproducible across any execution schedule.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from ..devices.set_transistor import SETTransistor
from ..errors import ValidationError

#: Deviation kinds (mirrors the spicelib ``DeviationType`` vocabulary).
DEVIATION_KINDS = ("tolerance", "minmax", "none")

#: Sampling distributions.
DISTRIBUTIONS = ("uniform", "normal")

#: Refuse corner enumerations larger than this (2**10 elements).
_MAX_CORNERS = 1024


def derive_element_seed(root_seed: int, element: str,
                        sample_index: int) -> int:
    """Deterministic per-element, per-sample seed.

    Parameters
    ----------
    root_seed:
        The design spec's root seed.
    element:
        Device parameter name (e.g. ``"junction_capacitance"``).
    sample_index:
        Monte-Carlo sample ordinal (0-based).

    Returns
    -------
    int
        A 32-bit seed: SHA-256 of ``"{root_seed}:{element}:{sample_index}"``,
        stable across processes, platforms, and Python versions.  Because
        the stream is keyed on the element *name* and sample *index* — not
        on draw order — tolerance draws are independent of axis iteration
        order and worker count.
    """
    token = f"{root_seed}:{element}:{sample_index}"
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class ComponentDeviation:
    """Deviation model of one device parameter.

    Parameters
    ----------
    kind:
        ``"tolerance"`` (relative, symmetric around nominal), ``"minmax"``
        (absolute bounds), or ``"none"`` (no deviation).
    tolerance:
        Relative half-width for ``kind="tolerance"`` (``0.1`` = ±10 %).
    minimum, maximum:
        Absolute bounds for ``kind="minmax"``.
    distribution:
        ``"uniform"`` over the bounds, or ``"normal"`` (mean at the centre,
        3-sigma at the bounds, clipped).
    """

    kind: str = "none"
    tolerance: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    distribution: str = "uniform"

    def __post_init__(self) -> None:
        """Validate the kind/distribution vocabulary and the bounds."""
        if self.kind not in DEVIATION_KINDS:
            raise ValidationError(
                f"deviation kind must be one of {DEVIATION_KINDS}, got "
                f"{self.kind!r}")
        if self.distribution not in DISTRIBUTIONS:
            raise ValidationError(
                f"deviation distribution must be one of {DISTRIBUTIONS}, "
                f"got {self.distribution!r}")
        if self.kind == "tolerance" and not 0.0 < self.tolerance < 1.0:
            raise ValidationError(
                f"relative tolerance must be in (0, 1), got "
                f"{self.tolerance!r}")
        if self.kind == "minmax" and not self.maximum > self.minimum:
            raise ValidationError(
                f"minmax deviation needs maximum > minimum, got "
                f"[{self.minimum!r}, {self.maximum!r}]")

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_tolerance(cls, tolerance: float,
                       distribution: str = "uniform") -> "ComponentDeviation":
        """A relative tolerance deviation (``0.1`` = ±10 % around nominal)."""
        return cls(kind="tolerance", tolerance=float(tolerance),
                   distribution=distribution)

    @classmethod
    def from_min_max(cls, minimum: float, maximum: float,
                     distribution: str = "uniform") -> "ComponentDeviation":
        """An absolute min/max deviation."""
        return cls(kind="minmax", minimum=float(minimum),
                   maximum=float(maximum), distribution=distribution)

    @classmethod
    def none(cls) -> "ComponentDeviation":
        """The no-deviation placeholder."""
        return cls(kind="none")

    # -------------------------------------------------------------- sampling

    def bounds(self, nominal: float) -> Tuple[float, float]:
        """The ``(low, high)`` deviation bounds around a nominal value."""
        if self.kind == "tolerance":
            low = nominal * (1.0 - self.tolerance)
            high = nominal * (1.0 + self.tolerance)
            return (min(low, high), max(low, high))
        if self.kind == "minmax":
            return (self.minimum, self.maximum)
        return (nominal, nominal)

    def corners(self, nominal: float) -> Tuple[float, ...]:
        """The worst-case corner values (empty for ``kind="none"``)."""
        if self.kind == "none":
            return ()
        return self.bounds(nominal)

    def sample(self, nominal: float, rng: np.random.Generator) -> float:
        """Draw one deviated value around a nominal.

        Parameters
        ----------
        nominal:
            The nominal parameter value.
        rng:
            The element's seeded generator (one per element per sample).

        Returns
        -------
        float
            The deviated value; always inside :meth:`bounds`.
        """
        if self.kind == "none":
            return float(nominal)
        low, high = self.bounds(nominal)
        if high <= low:
            return float(low)
        if self.distribution == "normal":
            centre = 0.5 * (low + high)
            sigma = (high - low) / 6.0
            return float(np.clip(rng.normal(centre, sigma), low, high))
        return float(rng.uniform(low, high))

    # ------------------------------------------------------------- documents

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "tolerance":
            payload["tolerance"] = self.tolerance
            payload["distribution"] = self.distribution
        elif self.kind == "minmax":
            payload["min"] = self.minimum
            payload["max"] = self.maximum
            payload["distribution"] = self.distribution
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ComponentDeviation":
        """Build a deviation from its plain-dict declaration."""
        known = ("kind", "tolerance", "min", "max", "distribution")
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ValidationError(
                f"unknown deviation key(s) {unknown}; known keys: "
                f"{sorted(known)}")
        try:
            return cls(kind=str(payload.get("kind", "none")),
                       tolerance=float(payload.get("tolerance", 0.0)),
                       minimum=float(payload.get("min", 0.0)),
                       maximum=float(payload.get("max", 0.0)),
                       distribution=str(payload.get("distribution",
                                                    "uniform")))
        except (TypeError, ValueError) as error:
            if isinstance(error, ValidationError):
                raise
            raise ValidationError(
                f"invalid deviation declaration: {error}") from None


class ToleranceModel:
    """Per-element deviation model of a whole device.

    Parameters
    ----------
    deviations:
        Mapping device parameter name -> :class:`ComponentDeviation`;
        parameters not present keep their nominal value.
    """

    def __init__(self,
                 deviations: Mapping[str, ComponentDeviation]) -> None:
        """Store the (name-sorted) deviation mapping."""
        self.deviations: Dict[str, ComponentDeviation] = {
            name: deviations[name] for name in sorted(deviations)}
        for name, deviation in self.deviations.items():
            if not isinstance(deviation, ComponentDeviation):
                raise ValidationError(
                    f"deviation for {name!r} must be a ComponentDeviation, "
                    f"got {type(deviation).__name__}")

    def __bool__(self) -> bool:
        """Whether any element actually deviates."""
        return any(d.kind != "none" for d in self.deviations.values())

    # ------------------------------------------------------------- documents

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {name: deviation.to_dict()
                for name, deviation in self.deviations.items()}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ToleranceModel":
        """Build a model from ``{element: deviation-dict}``."""
        return cls({str(name): ComponentDeviation.from_dict(entry)
                    for name, entry in dict(payload).items()})

    # --------------------------------------------------------------- devices

    def _nominal(self, device: SETTransistor, element: str) -> float:
        """The nominal value of one element, rejecting unset optionals."""
        value = getattr(device, element)
        if value is None:
            raise ValidationError(
                f"cannot apply a deviation to {element!r}: the base device "
                "leaves it unset (None)")
        return float(value)

    def sample_device(self, device: SETTransistor, root_seed: int,
                      sample_index: int) -> SETTransistor:
        """One Monte-Carlo deviated device.

        Parameters
        ----------
        device:
            The nominal device.
        root_seed:
            The design spec's root seed.
        sample_index:
            Sample ordinal; sample ``i`` is a pure function of
            ``(root_seed, i)`` regardless of execution schedule.

        Returns
        -------
        SETTransistor
            The deviated device (each toleranced element drawn from its own
            :func:`derive_element_seed` stream).
        """
        overrides: Dict[str, float] = {}
        for element, deviation in self.deviations.items():
            if deviation.kind == "none":
                continue
            rng = np.random.default_rng(
                derive_element_seed(root_seed, element, sample_index))
            overrides[element] = deviation.sample(
                self._nominal(device, element), rng)
        if not overrides:
            return device
        return dataclasses.replace(device, **overrides)

    def corner_devices(
            self, device: SETTransistor
    ) -> List[Tuple[Dict[str, float], SETTransistor]]:
        """Every worst-case corner device.

        Parameters
        ----------
        device:
            The nominal device.

        Returns
        -------
        list of (dict, SETTransistor)
            One entry per corner: the element -> value assignment and the
            corresponding device.  Empty when nothing deviates.
        """
        active = [(element, deviation.corners(self._nominal(device, element)))
                  for element, deviation in self.deviations.items()
                  if deviation.kind != "none"]
        if not active:
            return []
        total = 1
        for _, corner_values in active:
            total *= len(corner_values)
        if total > _MAX_CORNERS:
            raise ValidationError(
                f"corner analysis would enumerate {total} corners "
                f"(limit {_MAX_CORNERS}); reduce the number of toleranced "
                "elements")
        corners: List[Tuple[Dict[str, float], SETTransistor]] = []
        names = [element for element, _ in active]
        for combination in itertools.product(
                *(corner_values for _, corner_values in active)):
            assignment = dict(zip(names, combination))
            corners.append((assignment,
                            dataclasses.replace(device, **assignment)))
        return corners


__all__ = [
    "ComponentDeviation",
    "DEVIATION_KINDS",
    "DISTRIBUTIONS",
    "ToleranceModel",
    "derive_element_seed",
]
