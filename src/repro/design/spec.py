"""Declarative design-space specifications.

A :class:`DesignSpec` is the complete, serialisable description of one
*device scan*: the base device, the geometry/environment axes to sweep
(:class:`DeviceAxis` — junction and gate capacitances, tunnel resistances,
temperature, background charge, drain bias), the constraint set every grid
point is classified against, the optional component-tolerance model, and the
engine/seed/budget knobs.  Like :class:`~repro.scenarios.spec.ScenarioSpec`,
specs load from plain dicts, JSON, or TOML and canonicalise to a stable JSON
form whose SHA-256 hash keys the result cache — the same hash discipline
means checkpointed scan chunks and whole feasibility maps are
content-addressed artifacts.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..devices.set_transistor import SETTransistor
from ..errors import ValidationError
from ..io.results import content_hash
from ..scenarios.spec import (
    Budget,
    _coercion_errors,
    _read_maybe_path,
    _reject_unknown_keys,
    _toml_parser,
    known_engine_names,
)

#: Device-geometry parameters a :class:`DeviceAxis` may sweep (the numeric
#: fields of :class:`~repro.devices.set_transistor.SETTransistor`).
DEVICE_PARAMETERS = (
    "junction_capacitance",
    "gate_capacitance",
    "junction_resistance",
    "drain_capacitance",
    "source_capacitance",
    "drain_resistance",
    "source_resistance",
)

#: Environment parameters a :class:`DeviceAxis` may sweep.
#: ``background_charge_e`` is the island offset charge in units of *e* (the
#: paper's dimensionless ``q0``); ``temperature`` is in kelvin;
#: ``drain_voltage`` in volt.
ENVIRONMENT_PARAMETERS = ("temperature", "background_charge_e",
                          "drain_voltage")

#: Every parameter name a design axis may carry.
SCAN_PARAMETERS = DEVICE_PARAMETERS + ENVIRONMENT_PARAMETERS


@dataclass(frozen=True)
class DeviceAxis:
    """One swept device or environment parameter of a design scan.

    Either an explicit value list (``values``) or a ``start``/``stop``/
    ``points`` grid — exactly one of the two forms.  Grids may be linearly
    or logarithmically spaced (capacitances and resistances span decades;
    ``spacing="log"`` is the natural choice there).

    Parameters
    ----------
    parameter:
        The swept quantity — one of :data:`SCAN_PARAMETERS`.
    start, stop:
        Grid end points (used when ``values`` is ``None``).
    points:
        Number of grid points (>= 2 for the grid form).
    spacing:
        ``"linear"`` (``numpy.linspace``) or ``"log"``
        (``numpy.geomspace``; requires same-sign, non-zero end points).
    values:
        Explicit values; overrides the grid fields.
    """

    parameter: str
    start: float = 0.0
    stop: float = 0.0
    points: int = 0
    spacing: str = "linear"
    values: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        """Validate the parameter name and the grid/values form."""
        if self.parameter not in SCAN_PARAMETERS:
            raise ValidationError(
                f"unknown scan parameter {self.parameter!r}; choose from "
                f"{SCAN_PARAMETERS}")
        if self.spacing not in ("linear", "log"):
            raise ValidationError(
                f"axis {self.parameter!r} spacing must be 'linear' or "
                f"'log', got {self.spacing!r}")
        if self.values is not None:
            if len(self.values) == 0:
                raise ValidationError(
                    f"design axis {self.parameter!r} has an empty values "
                    "list")
            object.__setattr__(self, "values",
                               tuple(float(v) for v in self.values))
        else:
            if self.points < 2:
                raise ValidationError(
                    f"design axis {self.parameter!r} needs values or "
                    "points >= 2")
            if self.spacing == "log" and self.start * self.stop <= 0.0:
                raise ValidationError(
                    f"design axis {self.parameter!r} with log spacing "
                    "needs same-sign, non-zero start/stop")

    def grid(self) -> np.ndarray:
        """The axis as a float array (explicit values or the spaced grid)."""
        if self.values is not None:
            return np.asarray(self.values, dtype=float)
        if self.spacing == "log":
            return np.geomspace(float(self.start), float(self.stop),
                                int(self.points))
        return np.linspace(float(self.start), float(self.stop),
                           int(self.points))

    def __len__(self) -> int:
        """Number of grid points on this axis."""
        if self.values is not None:
            return len(self.values)
        return int(self.points)

    def to_dict(self) -> Dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        payload: Dict = {"parameter": self.parameter}
        if self.values is not None:
            payload["values"] = list(self.values)
        else:
            payload.update(start=self.start, stop=self.stop,
                           points=self.points, spacing=self.spacing)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DeviceAxis":
        """Build an axis from a plain dict (JSON/TOML deserialisation)."""
        _reject_unknown_keys("design axis", payload,
                             ("parameter", "start", "stop", "points",
                              "spacing", "values"))
        values = payload.get("values")
        with _coercion_errors("design axis"):
            return cls(parameter=str(payload["parameter"]),
                       start=float(payload.get("start", 0.0)),
                       stop=float(payload.get("stop", 0.0)),
                       points=int(payload.get("points", 0)),
                       spacing=str(payload.get("spacing", "linear")),
                       values=None if values is None else tuple(values))


@dataclass(frozen=True)
class DesignSpec:
    """Complete declarative description of one design-space scan.

    Parameters
    ----------
    name:
        Identifier of the scan (``snake_case``).
    engine:
        Any registered engine name, or ``"auto"`` to let the scan pick the
        cheapest available engine by capability introspection.
    device:
        Base device parameters (:class:`SETTransistor` keyword arguments);
        swept axes override these per grid point.
    axes:
        The swept device/environment axes, in order (grid iteration is
        row-major: the first axis varies slowest).
    constraints:
        Constraint declarations, each a plain dict understood by
        :func:`repro.design.constraints.build_constraints` (``type``,
        ``kind``, ``threshold``, ...).
    temperature:
        Operating temperature in kelvin (unless swept by an axis).
    drain_voltage:
        Drain bias in volt for the on/off operating points (unless swept).
    on_gate_fraction, off_gate_fraction:
        Gate bias of the conducting/blockaded operating points, in units
        of the device's gate period ``e/Cg`` (defaults: peak at one half
        period, blockade at zero).
    seed:
        Root seed; stochastic engines and the tolerance Monte-Carlo derive
        per-point/per-element seeds from it (never from iteration order).
    budget:
        Event/replica/worker budget forwarded to stochastic engines.
    chunk_size:
        Grid points per checkpoint chunk (the resume granularity).
    tolerances:
        Optional component-tolerance model: mapping parameter name ->
        deviation dict (see
        :class:`repro.design.tolerance.ComponentDeviation`).
    tolerance_samples:
        Monte-Carlo samples per design point for yield analysis.
    """

    name: str
    engine: str = "auto"
    device: Mapping[str, float] = field(default_factory=dict)
    axes: Tuple[DeviceAxis, ...] = ()
    constraints: Tuple[Mapping[str, Any], ...] = ()
    temperature: float = 1.0
    drain_voltage: float = 2e-3
    on_gate_fraction: float = 0.5
    off_gate_fraction: float = 0.0
    seed: int = 1
    budget: Budget = field(default_factory=Budget)
    chunk_size: int = 256
    tolerances: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    tolerance_samples: int = 64

    def __post_init__(self) -> None:
        """Validate names, axes, constraints, and tolerance declarations."""
        if not self.name:
            raise ValidationError("design spec needs a name")
        known = known_engine_names()
        if self.engine not in known:
            raise ValidationError(
                f"unknown engine {self.engine!r}; choose from {known}")
        object.__setattr__(self, "device", dict(self.device))
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "constraints",
                           tuple(dict(c) for c in self.constraints))
        object.__setattr__(self, "tolerances",
                           {str(k): dict(v)
                            for k, v in dict(self.tolerances).items()})
        if not self.axes:
            raise ValidationError("design spec needs at least one axis")
        parameters = [axis.parameter for axis in self.axes]
        if len(set(parameters)) != len(parameters):
            raise ValidationError(
                f"duplicate design axes: {sorted(parameters)}")
        if self.chunk_size < 1:
            raise ValidationError("design chunk_size must be >= 1")
        if self.tolerance_samples < 1:
            raise ValidationError("tolerance_samples must be >= 1")
        if not self.constraints:
            raise ValidationError(
                "design spec needs at least one constraint (a scan without "
                "constraints classifies nothing)")
        for name in self.tolerances:
            if name not in DEVICE_PARAMETERS:
                raise ValidationError(
                    f"tolerance on unknown device parameter {name!r}; "
                    f"choose from {DEVICE_PARAMETERS}")
        # Fail early on malformed constraint/tolerance declarations instead
        # of at the first scanned point.
        from .constraints import build_constraints
        from .tolerance import ToleranceModel

        build_constraints(self.constraints)
        ToleranceModel.from_dict(self.tolerances)

    # ------------------------------------------------------------ geometry

    @property
    def shape(self) -> Tuple[int, ...]:
        """Grid shape, one entry per axis (first axis varies slowest)."""
        return tuple(len(axis) for axis in self.axes)

    def __len__(self) -> int:
        """Total number of grid points."""
        return int(np.prod(self.shape))

    def axis_values(self) -> Dict[str, np.ndarray]:
        """Mapping axis parameter -> its grid values."""
        return {axis.parameter: axis.grid() for axis in self.axes}

    def point_parameters(self, flat_index: int) -> Dict[str, float]:
        """The swept parameter values at one flat grid index.

        Parameters
        ----------
        flat_index:
            Row-major index into the grid (first axis slowest).

        Returns
        -------
        dict
            Mapping axis parameter -> value at that point.
        """
        if not 0 <= flat_index < len(self):
            raise ValidationError(
                f"flat index {flat_index} outside the {len(self)}-point "
                "grid")
        multi = np.unravel_index(flat_index, self.shape)
        return {axis.parameter: float(axis.grid()[position])
                for axis, position in zip(self.axes, multi)}

    def base_device(self) -> SETTransistor:
        """The base :class:`SETTransistor` (before axis overrides)."""
        return SETTransistor(**{str(k): float(v)
                                for k, v in self.device.items()})

    # ------------------------------------------------------------ documents

    def to_dict(self) -> Dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "engine": self.engine,
            "device": dict(self.device),
            "axes": [axis.to_dict() for axis in self.axes],
            "constraints": [dict(c) for c in self.constraints],
            "temperature": self.temperature,
            "drain_voltage": self.drain_voltage,
            "on_gate_fraction": self.on_gate_fraction,
            "off_gate_fraction": self.off_gate_fraction,
            "seed": self.seed,
            "budget": self.budget.to_dict(),
            "chunk_size": self.chunk_size,
            "tolerances": {k: dict(v) for k, v in self.tolerances.items()},
            "tolerance_samples": self.tolerance_samples,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DesignSpec":
        """Build a spec from a plain dict (the JSON/TOML document root).

        Unknown keys are rejected rather than silently dropped — a typo in
        a design document must not fall back to a default and then be
        content-hashed as if the author's intent had been honoured.
        """
        _reject_unknown_keys("design spec", payload,
                             ("name", "engine", "device", "axes",
                              "constraints", "temperature", "drain_voltage",
                              "on_gate_fraction", "off_gate_fraction",
                              "seed", "budget", "chunk_size", "tolerances",
                              "tolerance_samples"))
        try:
            name = str(payload["name"])
        except KeyError:
            raise ValidationError("design document needs a 'name'") from None
        with _coercion_errors("design spec"):
            return cls(
                name=name,
                engine=str(payload.get("engine", "auto")),
                device=dict(payload.get("device", {})),
                axes=tuple(DeviceAxis.from_dict(axis)
                           for axis in payload.get("axes", ())),
                constraints=tuple(dict(c)
                                  for c in payload.get("constraints", ())),
                temperature=float(payload.get("temperature", 1.0)),
                drain_voltage=float(payload.get("drain_voltage", 2e-3)),
                on_gate_fraction=float(payload.get("on_gate_fraction", 0.5)),
                off_gate_fraction=float(payload.get("off_gate_fraction",
                                                    0.0)),
                seed=int(payload.get("seed", 1)),
                budget=Budget.from_dict(payload.get("budget", {})),
                chunk_size=int(payload.get("chunk_size", 256)),
                tolerances=dict(payload.get("tolerances", {})),
                tolerance_samples=int(payload.get("tolerance_samples", 64)),
            )

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "DesignSpec":
        """Parse a spec from JSON text or a ``.json`` file path."""
        text = _read_maybe_path(source)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"invalid design JSON: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_toml(cls, source: Union[str, Path]) -> "DesignSpec":
        """Parse a spec from TOML text or a ``.toml`` file path.

        The document may live at the root or under a ``[design]`` table.
        """
        tomllib = _toml_parser()
        text = _read_maybe_path(source)
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ValidationError(f"invalid design TOML: {error}") from None
        if "design" in payload and isinstance(payload["design"], dict):
            payload = payload["design"]
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DesignSpec":
        """Load a spec file, picking the parser from the extension."""
        path = Path(path)
        if path.suffix.lower() == ".toml":
            return cls.from_toml(path)
        return cls.from_json(path)

    def replace(self, **changes: Any) -> "DesignSpec":
        """A copy with the given fields replaced (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------- hashing

    def canonical_json(self) -> str:
        """Stable JSON form: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 hash of :meth:`canonical_json` — the cache identity."""
        return content_hash(self.canonical_json())


__all__ = [
    "DEVICE_PARAMETERS",
    "DeviceAxis",
    "DesignSpec",
    "ENVIRONMENT_PARAMETERS",
    "SCAN_PARAMETERS",
]
