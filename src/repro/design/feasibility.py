"""Feasibility maps: per-point verdicts and margins over a design grid.

A :class:`FeasibilityMap` is the result of one design scan: for every point
of the device/environment grid it records a three-valued **verdict**
(:data:`FEASIBLE` / :data:`INFEASIBLE` / :data:`UNKNOWN`), the
**robustness margin** (the minimum hard-constraint margin — how far inside
or outside the feasible window the point sits; fragile designs have small
positive margins), every constraint's individual margin, the on/off
operating currents, an optional per-point tolerance **yield**, and a
per-point status string (``ok`` / ``failed`` / ``skipped``) mirroring the
resilience layer's point records.

Maps are plain-payload serialisable (:meth:`FeasibilityMap.to_payload` /
:meth:`from_payload`) so they flow through the result cache, the CLI's
``--json`` output, and bit-identity checks (:meth:`payload_json` is a
canonical string even in the presence of NaN margins).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError

#: Verdict codes stored in the map's int8 verdict array.
FEASIBLE = 1
INFEASIBLE = 0
UNKNOWN = -1

#: Human-readable names of the verdict codes.
VERDICT_NAMES = {FEASIBLE: "feasible", INFEASIBLE: "infeasible",
                 UNKNOWN: "unknown"}


@dataclass(frozen=True)
class FeasibilityMap:
    """Per-point design verdicts and margins over a scan grid.

    Parameters
    ----------
    spec_hash:
        Content hash of the :class:`~repro.design.spec.DesignSpec` that
        produced the map.
    engine:
        Resolved engine name the scan executed through.
    axes:
        Ordered ``(parameter, values)`` pairs — the grid geometry
        (row-major flattening, first axis slowest).
    constraints:
        Ordered constraint metadata dicts (``name``/``kind``/``threshold``),
        aligned with the rows of ``margins``.
    verdicts:
        Flat ``int8`` array of verdict codes, one per grid point.
    robustness:
        Flat float array: minimum hard-constraint margin per point
        (NaN where unknown).
    margins:
        2-D float array, one row per constraint (same order as
        ``constraints``), one column per grid point.
    on_currents, off_currents:
        Flat float arrays of the operating currents (NaN where the scan
        skipped the engine solves).
    statuses:
        Per-point status strings: ``"ok"``, ``"failed"``, or ``"skipped"``.
    yields:
        Optional flat float array of per-point tolerance-MC yield in
        ``[0, 1]`` (``None`` when the spec declares no tolerances).
    chunks_computed, chunks_resumed:
        How many checkpoint chunks the producing scan computed vs loaded.
    """

    spec_hash: str
    engine: str
    axes: Tuple[Tuple[str, Tuple[float, ...]], ...]
    constraints: Tuple[Mapping[str, Any], ...]
    verdicts: np.ndarray
    robustness: np.ndarray
    margins: np.ndarray
    on_currents: np.ndarray
    off_currents: np.ndarray
    statuses: Tuple[str, ...]
    yields: Optional[np.ndarray] = None
    chunks_computed: int = 0
    chunks_resumed: int = 0

    def __post_init__(self) -> None:
        """Normalise array dtypes and validate the grid geometry."""
        object.__setattr__(self, "axes",
                           tuple((str(name), tuple(float(v) for v in values))
                                 for name, values in self.axes))
        object.__setattr__(self, "constraints",
                           tuple(dict(c) for c in self.constraints))
        object.__setattr__(self, "verdicts",
                           np.asarray(self.verdicts, dtype=np.int8))
        for attribute in ("robustness", "on_currents", "off_currents"):
            object.__setattr__(self, attribute,
                               np.asarray(getattr(self, attribute),
                                          dtype=float))
        object.__setattr__(self, "margins",
                           np.asarray(self.margins, dtype=float))
        if self.yields is not None:
            object.__setattr__(self, "yields",
                               np.asarray(self.yields, dtype=float))
        object.__setattr__(self, "statuses",
                           tuple(str(s) for s in self.statuses))
        total = self.size
        for label, array in (("verdicts", self.verdicts),
                             ("robustness", self.robustness),
                             ("on_currents", self.on_currents),
                             ("off_currents", self.off_currents)):
            if array.shape != (total,):
                raise ValidationError(
                    f"feasibility map {label} has shape {array.shape}, "
                    f"expected ({total},)")
        if len(self.statuses) != total:
            raise ValidationError(
                f"feasibility map has {len(self.statuses)} statuses for "
                f"{total} points")
        expected = (len(self.constraints), total)
        if self.margins.shape != expected:
            raise ValidationError(
                f"feasibility map margins have shape {self.margins.shape}, "
                f"expected {expected}")
        if self.yields is not None and self.yields.shape != (total,):
            raise ValidationError(
                f"feasibility map yields have shape {self.yields.shape}, "
                f"expected ({total},)")

    # ------------------------------------------------------------- geometry

    @property
    def shape(self) -> Tuple[int, ...]:
        """Grid shape, one entry per axis."""
        return tuple(len(values) for _, values in self.axes)

    @property
    def size(self) -> int:
        """Total number of grid points."""
        return int(np.prod(self.shape)) if self.axes else 0

    @property
    def parameters(self) -> Tuple[str, ...]:
        """The swept parameter names, in axis order."""
        return tuple(name for name, _ in self.axes)

    def point_parameters(self, flat_index: int) -> Dict[str, float]:
        """The swept parameter values at one flat grid index."""
        multi = np.unravel_index(int(flat_index), self.shape)
        return {name: values[position]
                for (name, values), position in zip(self.axes, multi)}

    # -------------------------------------------------------------- queries

    def verdict_grid(self) -> np.ndarray:
        """The verdict array reshaped to the grid."""
        return self.verdicts.reshape(self.shape)

    def robustness_grid(self) -> np.ndarray:
        """The robustness-margin array reshaped to the grid."""
        return self.robustness.reshape(self.shape)

    def margin_grid(self, constraint: str) -> np.ndarray:
        """One constraint's margin array reshaped to the grid."""
        for row, meta in enumerate(self.constraints):
            if meta["name"] == constraint:
                return self.margins[row].reshape(self.shape)
        raise ValidationError(
            f"feasibility map has no constraint {constraint!r}; "
            f"constraints: {[c['name'] for c in self.constraints]}")

    def yield_grid(self) -> np.ndarray:
        """The tolerance-yield array reshaped to the grid."""
        if self.yields is None:
            raise ValidationError(
                "feasibility map carries no tolerance yields (the spec "
                "declares no tolerances)")
        return self.yields.reshape(self.shape)

    def counts(self) -> Dict[str, int]:
        """Verdict histogram: feasible / infeasible / unknown counts."""
        return {name: int(np.sum(self.verdicts == code))
                for code, name in sorted(VERDICT_NAMES.items())}

    @property
    def feasible_fraction(self) -> float:
        """Fraction of *classified* points that are feasible.

        Unknown points are excluded from the denominator; 0.0 when nothing
        was classified.
        """
        known = int(np.sum(self.verdicts != UNKNOWN))
        if known == 0:
            return 0.0
        return float(np.sum(self.verdicts == FEASIBLE)) / known

    @property
    def is_partial(self) -> bool:
        """Whether any point is unclassified (failed or skipped mid-scan)."""
        return bool(np.any(self.verdicts == UNKNOWN))

    def most_robust_point(self) -> Optional[int]:
        """Flat index of the feasible point with the largest margin."""
        feasible = self.verdicts == FEASIBLE
        if not np.any(feasible):
            return None
        margins = np.where(feasible, self.robustness, -np.inf)
        return int(np.nanargmax(margins))

    # ------------------------------------------------------------- payloads

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able payload (inverse of :meth:`from_payload`)."""
        payload: Dict[str, Any] = {
            "kind": "feasibility-map",
            "spec_hash": self.spec_hash,
            "engine": self.engine,
            "axes": [{"parameter": name, "values": list(values)}
                     for name, values in self.axes],
            "constraints": [dict(c) for c in self.constraints],
            "verdicts": [int(v) for v in self.verdicts],
            "robustness": [float(v) for v in self.robustness],
            "margins": [[float(v) for v in row] for row in self.margins],
            "on_currents": [float(v) for v in self.on_currents],
            "off_currents": [float(v) for v in self.off_currents],
            "statuses": list(self.statuses),
            "yields": None if self.yields is None
            else [float(v) for v in self.yields],
            "chunks_computed": self.chunks_computed,
            "chunks_resumed": self.chunks_resumed,
        }
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "FeasibilityMap":
        """Rebuild a map from :meth:`to_payload` output.

        Parameters
        ----------
        payload : Mapping
            A dict produced by :meth:`to_payload` (or parsed back from its
            JSON form) with ``kind`` set to ``"feasibility-map"``.

        Returns
        -------
        FeasibilityMap
            The reconstructed map; array fields are restored to their
            numpy dtypes and missing chunk counters default to zero.
        """
        if payload.get("kind") != "feasibility-map":
            raise ValidationError(
                "payload is not a feasibility map (missing "
                "kind='feasibility-map')")
        yields = payload.get("yields")
        return cls(
            spec_hash=str(payload["spec_hash"]),
            engine=str(payload["engine"]),
            axes=tuple((axis["parameter"], tuple(axis["values"]))
                       for axis in payload["axes"]),
            constraints=tuple(payload["constraints"]),
            verdicts=np.asarray(payload["verdicts"], dtype=np.int8),
            robustness=np.asarray(payload["robustness"], dtype=float),
            margins=np.asarray(payload["margins"], dtype=float),
            on_currents=np.asarray(payload["on_currents"], dtype=float),
            off_currents=np.asarray(payload["off_currents"], dtype=float),
            statuses=tuple(payload["statuses"]),
            yields=None if yields is None
            else np.asarray(yields, dtype=float),
            chunks_computed=int(payload.get("chunks_computed", 0)),
            chunks_resumed=int(payload.get("chunks_resumed", 0)),
        )

    def payload_json(self) -> str:
        """Canonical JSON string of the payload (bit-identity surface).

        Sorted keys and compact separators; NaN serialises to the literal
        ``NaN`` token, so two maps are byte-identical iff every finite
        value matches and NaNs sit in the same slots.
        """
        return json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ":"))

    # --------------------------------------------------------------- display

    def summary_lines(self) -> List[str]:
        """Human-readable summary (the CLI's non-JSON output body)."""
        counts = self.counts()
        lines = [
            f"engine: {self.engine}   grid: "
            + " x ".join(f"{name}[{len(values)}]"
                         for name, values in self.axes)
            + f" = {self.size} points",
            f"verdicts: {counts['feasible']} feasible, "
            f"{counts['infeasible']} infeasible, "
            f"{counts['unknown']} unknown"
            + ("   [PARTIAL MAP]" if self.is_partial else ""),
            f"feasible fraction (of classified): "
            f"{self.feasible_fraction:.3f}",
        ]
        best = self.most_robust_point()
        if best is not None:
            assignment = ", ".join(
                f"{name}={value:g}"
                for name, value in self.point_parameters(best).items())
            lines.append(f"most robust point: #{best} ({assignment}) "
                         f"margin={self.robustness[best]:.3f}")
        if self.yields is not None:
            known = self.yields[np.isfinite(self.yields)]
            if known.size:
                lines.append(f"tolerance yield: min={known.min():.3f} "
                             f"mean={known.mean():.3f} "
                             f"max={known.max():.3f}")
        lines.append(f"checkpoints: {self.chunks_computed} computed, "
                     f"{self.chunks_resumed} resumed")
        return lines


def merge_chunk_payloads(chunks: Sequence[Mapping[str, Any]],
                         total: int) -> Dict[str, Any]:
    """Merge per-chunk scan payloads into full-grid flat arrays.

    Parameters
    ----------
    chunks:
        Chunk payloads (each with ``start``, ``verdicts``, ``robustness``,
        ``margins``, ``on_currents``, ``off_currents``, ``statuses``,
        optional ``yields``), in any order; missing chunks simply leave
        their slots at the UNKNOWN / NaN / ``"skipped"`` defaults.
    total:
        Total number of grid points.

    Returns
    -------
    dict
        Flat arrays covering the whole grid (``margins`` is a list of
        per-constraint rows).
    """
    n_constraints = 0
    for chunk in chunks:
        n_constraints = max(n_constraints, len(chunk.get("margins", ())))
    verdicts = np.full(total, UNKNOWN, dtype=np.int8)
    robustness = np.full(total, np.nan)
    margins = np.full((n_constraints, total), np.nan)
    on_currents = np.full(total, np.nan)
    off_currents = np.full(total, np.nan)
    statuses = ["skipped"] * total
    any_yields = any(chunk.get("yields") is not None for chunk in chunks)
    yields = np.full(total, np.nan) if any_yields else None
    for chunk in chunks:
        start = int(chunk["start"])
        count = len(chunk["verdicts"])
        stop = start + count
        verdicts[start:stop] = np.asarray(chunk["verdicts"], dtype=np.int8)
        robustness[start:stop] = np.asarray(chunk["robustness"], dtype=float)
        for row, values in enumerate(chunk.get("margins", ())):
            margins[row, start:stop] = np.asarray(values, dtype=float)
        on_currents[start:stop] = np.asarray(chunk["on_currents"],
                                             dtype=float)
        off_currents[start:stop] = np.asarray(chunk["off_currents"],
                                              dtype=float)
        statuses[start:stop] = [str(s) for s in chunk["statuses"]]
        if yields is not None and chunk.get("yields") is not None:
            yields[start:stop] = np.asarray(chunk["yields"], dtype=float)
    return {"verdicts": verdicts, "robustness": robustness,
            "margins": margins, "on_currents": on_currents,
            "off_currents": off_currents, "statuses": tuple(statuses),
            "yields": yields}


__all__ = [
    "FEASIBLE",
    "FeasibilityMap",
    "INFEASIBLE",
    "UNKNOWN",
    "VERDICT_NAMES",
    "merge_chunk_payloads",
]
