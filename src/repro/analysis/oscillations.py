"""Extraction of period, amplitude and phase from Coulomb oscillations.

The paper's key observation is that of the three descriptors of the periodic
Id-Vg characteristic — period, amplitude, phase — only the *phase* is touched
by the random background charge.  These helpers turn a simulated (or measured)
sweep into exactly those three numbers so the claim can be tested
quantitatively (experiment E1) and so the AM/FM logic decoder
(:mod:`repro.logic.amfm`) has something to decide on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class OscillationAnalysis:
    """Descriptors of a periodic characteristic.

    Attributes
    ----------
    period:
        Dominant period in the sweep variable's unit (volt for Id-Vg).
    amplitude:
        Amplitude of the fundamental Fourier component (same unit as the
        signal, e.g. ampere).
    peak_to_peak:
        Max-min signal excursion.
    phase:
        Phase of the fundamental component in radians, in ``[-pi, pi)``.
    mean:
        Mean signal level.
    """

    period: float
    amplitude: float
    peak_to_peak: float
    phase: float
    mean: float

    def phase_in_periods(self) -> float:
        """Phase expressed as a fraction of a period, in ``[0, 1)``."""
        fraction = self.phase / (2.0 * np.pi)
        return float(fraction % 1.0)


def _check_uniform_grid(x: np.ndarray) -> float:
    steps = np.diff(x)
    if x.size < 8:
        raise AnalysisError("need at least 8 samples to analyse oscillations")
    if np.any(steps <= 0.0):
        raise AnalysisError("sweep values must be strictly increasing")
    spread = steps.max() - steps.min()
    if spread > 1e-6 * abs(steps.mean()):
        raise AnalysisError("oscillation analysis requires a uniform sweep grid")
    return float(steps.mean())


def fundamental_component(x: Sequence[float], y: Sequence[float]
                          ) -> Tuple[float, float, float]:
    """Dominant non-DC Fourier component of a uniformly sampled signal.

    Returns ``(period, amplitude, phase)``; raises
    :class:`~repro.errors.AnalysisError` when the record is too short or not
    uniformly sampled.
    """
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape:
        raise AnalysisError("x and y must have the same shape")
    step = _check_uniform_grid(x_array)

    detrended = y_array - y_array.mean()
    spectrum = np.fft.rfft(detrended)
    frequencies = np.fft.rfftfreq(y_array.size, d=step)
    if spectrum.size < 2:
        raise AnalysisError("record too short for spectral analysis")
    magnitudes = np.abs(spectrum)
    magnitudes[0] = 0.0
    peak = int(np.argmax(magnitudes))
    if magnitudes[peak] == 0.0:
        raise AnalysisError("signal has no oscillating component")
    frequency = frequencies[peak]
    if frequency <= 0.0:
        raise AnalysisError("could not identify a positive oscillation frequency")
    period = 1.0 / frequency
    amplitude = 2.0 * magnitudes[peak] / y_array.size
    # numpy's rfft uses exp(-i 2 pi f x); the signal component is
    # A cos(2 pi f (x - x0) + phase).
    phase = float(np.angle(spectrum[peak]) + 2.0 * np.pi * frequency * x_array[0])
    phase = float((phase + np.pi) % (2.0 * np.pi) - np.pi)
    return float(period), float(amplitude), phase


def refine_period_by_peaks(x: Sequence[float], y: Sequence[float],
                           minimum_prominence: float = 0.25) -> float:
    """Period estimate from the median spacing of local maxima.

    More robust than the FFT estimate when fewer than ~3 periods are covered,
    at the cost of needing clearly separated peaks.  ``minimum_prominence`` is
    a fraction of the peak-to-peak signal excursion.
    """
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.size < 5:
        raise AnalysisError("need at least 5 samples for peak-based analysis")
    span = y_array.max() - y_array.min()
    if span <= 0.0:
        raise AnalysisError("signal is constant; no peaks to find")
    threshold = y_array.min() + minimum_prominence * span
    peaks = []
    for index in range(1, y_array.size - 1):
        if (y_array[index] >= y_array[index - 1]
                and y_array[index] > y_array[index + 1]
                and y_array[index] >= threshold):
            peaks.append(x_array[index])
    if len(peaks) < 2:
        raise AnalysisError("fewer than two peaks found; cannot estimate a period")
    spacings = np.diff(peaks)
    return float(np.median(spacings))


def analyze_oscillations(x: Sequence[float], y: Sequence[float]) -> OscillationAnalysis:
    """Full oscillation analysis: period, amplitude, peak-to-peak, phase, mean."""
    y_array = np.asarray(y, dtype=float)
    period, amplitude, phase = fundamental_component(x, y)
    return OscillationAnalysis(
        period=period,
        amplitude=amplitude,
        peak_to_peak=float(y_array.max() - y_array.min()),
        phase=phase,
        mean=float(y_array.mean()),
    )


def phase_shift_between(x: Sequence[float], reference: Sequence[float],
                        shifted: Sequence[float]) -> float:
    """Phase shift (radians) of ``shifted`` relative to ``reference``.

    Both signals must share the sweep grid ``x`` and the same period; the
    returned value lies in ``[-pi, pi)``.  Used to show that a background
    charge moves the phase of the Id-Vg characteristic by
    ``2 pi q0 / e`` while leaving period and amplitude alone.
    """
    period_ref, _, phase_ref = fundamental_component(x, reference)
    period_shift, _, phase_shift = fundamental_component(x, shifted)
    if abs(period_ref - period_shift) > 0.05 * period_ref:
        raise AnalysisError(
            "signals have different periods; a phase shift is not defined"
        )
    delta = phase_shift - phase_ref
    return float((delta + np.pi) % (2.0 * np.pi) - np.pi)


__all__ = [
    "OscillationAnalysis",
    "analyze_oscillations",
    "fundamental_component",
    "phase_shift_between",
    "refine_period_by_peaks",
]
