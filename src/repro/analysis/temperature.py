"""Temperature scaling of single-electron devices.

"Achieving room temperature operation requires structures in the few
nanometre regime."  (paper, §2)

The chain of reasoning is purely electrostatic: a conducting island of
diameter ``d`` has a self-capacitance of order ``2 pi epsilon d`` (sphere:
``C = 2 pi epsilon_0 epsilon_r d``); the charging energy ``e^2 / (2 C)`` must
beat thermal fluctuations by a comfortable margin (conventionally a factor of
40) for the Coulomb blockade to be usable.  These helpers walk that chain in
both directions and quantify the thermal washing-out of Coulomb oscillations,
providing everything experiments E3 and E4 need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..constants import (
    BOLTZMANN,
    E_CHARGE,
    OPERATING_MARGIN,
    VACUUM_PERMITTIVITY,
    charging_energy,
)
from ..errors import AnalysisError


def island_self_capacitance(diameter: float, relative_permittivity: float = 3.9) -> float:
    """Self-capacitance (farad) of a spherical island of a given diameter (m).

    ``C = 2 pi epsilon_0 epsilon_r d`` — the sphere formula ``4 pi eps r``
    rewritten with the diameter.  The default permittivity is that of SiO2,
    the typical embedding dielectric.
    """
    if diameter <= 0.0:
        raise AnalysisError("diameter must be positive")
    if relative_permittivity <= 0.0:
        raise AnalysisError("relative permittivity must be positive")
    return 2.0 * math.pi * VACUUM_PERMITTIVITY * relative_permittivity * diameter


def diameter_for_capacitance(capacitance: float,
                             relative_permittivity: float = 3.9) -> float:
    """Island diameter (m) with a given self-capacitance (farad)."""
    if capacitance <= 0.0:
        raise AnalysisError("capacitance must be positive")
    return capacitance / (2.0 * math.pi * VACUUM_PERMITTIVITY * relative_permittivity)


def max_operating_temperature_for_diameter(diameter: float,
                                           relative_permittivity: float = 3.9,
                                           margin: float = OPERATING_MARGIN,
                                           junction_capacitance: float = 0.0) -> float:
    """Maximum operating temperature (K) of an island of a given diameter.

    ``junction_capacitance`` adds the capacitance of the attached tunnel
    junctions and gates, which in practice dominates for larger islands.
    """
    total = island_self_capacitance(diameter, relative_permittivity) \
        + max(junction_capacitance, 0.0)
    return charging_energy(total) / (margin * BOLTZMANN)


def diameter_for_temperature(temperature: float,
                             relative_permittivity: float = 3.9,
                             margin: float = OPERATING_MARGIN,
                             junction_capacitance: float = 0.0) -> float:
    """Largest island diameter (m) usable at a given temperature (K).

    Inverts :func:`max_operating_temperature_for_diameter`; raises
    :class:`~repro.errors.AnalysisError` when the fixed junction capacitance
    alone already exceeds the capacitance budget.
    """
    if temperature <= 0.0:
        raise AnalysisError("temperature must be positive")
    budget = E_CHARGE**2 / (2.0 * margin * BOLTZMANN * temperature)
    remaining = budget - max(junction_capacitance, 0.0)
    if remaining <= 0.0:
        raise AnalysisError(
            "the junction capacitance alone exceeds the capacitance budget at this "
            "temperature; no island is small enough"
        )
    return diameter_for_capacitance(remaining, relative_permittivity)


def oscillation_visibility(total_capacitance: float, temperature: float) -> float:
    """Approximate visibility of Coulomb oscillations at a finite temperature.

    Defined as ``(I_max - I_min) / (I_max + I_min)`` of the Id-Vg
    characteristic; thermal smearing suppresses it roughly as
    ``tanh(E_C / (2.5 k_B T))`` (empirical fit to the orthodox model across
    the useful range, exact limits 1 at T -> 0 and 0 at T -> infinity).
    """
    if temperature < 0.0:
        raise AnalysisError("temperature must be non-negative")
    if temperature == 0.0:
        return 1.0
    energy_ratio = charging_energy(total_capacitance) / (BOLTZMANN * temperature)
    return float(np.tanh(energy_ratio / 2.5))


def simulated_oscillation_visibility(set_model, temperature: float,
                                     drain_voltage: Optional[float] = None,
                                     points: int = 41) -> float:
    """Visibility of the Id-Vg oscillations from an actual model sweep.

    ``set_model`` is any compact model with ``gate_period``,
    ``total_capacitance`` and the broadcast ``drain_current_map`` interface
    — in practice an :class:`~repro.compact.set_model.AnalyticSETModel`
    created at ``temperature``.  The sweep runs through the uniform
    :class:`~repro.engines.base.Session` API (the analytic engine's
    broadcast fast path); scalar-only duck-typed models are no longer
    accepted — wrap them in a ``drain_current_map`` or use the session
    layer directly.
    """
    from ..engines import SweepAxes
    from ..engines.adapters import AnalyticSession

    period = set_model.gate_period
    if drain_voltage is None:
        drain_voltage = 0.1 * E_CHARGE / set_model.total_capacitance
    gates = np.linspace(0.0, period, points)
    session = AnalyticSession.from_model(set_model)
    currents = session.sweep(SweepAxes(gates, drain_voltage)).currents
    high, low = currents.max(), currents.min()
    if high + low <= 0.0:
        return 0.0
    return float((high - low) / (high + low))


@dataclass(frozen=True)
class TemperatureScalingRow:
    """One row of the temperature-scaling table (experiment E4)."""

    diameter: float
    total_capacitance: float
    charging_energy: float
    max_temperature: float
    room_temperature_ok: bool


def temperature_scaling_table(diameters: Sequence[float],
                              relative_permittivity: float = 3.9,
                              margin: float = OPERATING_MARGIN,
                              junction_capacitance: float = 0.0,
                              room_temperature: float = 300.0
                              ) -> Tuple[TemperatureScalingRow, ...]:
    """The island-size -> operating-temperature table of experiment E4."""
    rows = []
    for diameter in diameters:
        total = island_self_capacitance(diameter, relative_permittivity) \
            + max(junction_capacitance, 0.0)
        energy = charging_energy(total)
        max_temperature = energy / (margin * BOLTZMANN)
        rows.append(TemperatureScalingRow(
            diameter=float(diameter),
            total_capacitance=total,
            charging_energy=energy,
            max_temperature=max_temperature,
            room_temperature_ok=max_temperature >= room_temperature,
        ))
    return tuple(rows)


__all__ = [
    "TemperatureScalingRow",
    "diameter_for_capacitance",
    "diameter_for_temperature",
    "island_self_capacitance",
    "max_operating_temperature_for_diameter",
    "oscillation_visibility",
    "simulated_oscillation_visibility",
    "temperature_scaling_table",
]
