"""Charge-stability (Coulomb-diamond) diagrams.

A stability diagram maps the SET current over the (gate voltage, drain
voltage) plane; the diamond-shaped blockade regions visualise at a glance the
two numbers the paper keeps coming back to: the gate period ``e/C_g``
(diamond width) and the blockade voltage ``e/C_sigma`` (diamond height).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..constants import E_CHARGE
from ..errors import AnalysisError


@dataclass(frozen=True)
class StabilityDiagram:
    """A computed stability diagram.

    Attributes
    ----------
    gate_voltages, drain_voltages:
        The axes of the map, in volt.
    currents:
        2-D array of drain currents, shape ``(len(drain_voltages),
        len(gate_voltages))``.
    """

    gate_voltages: np.ndarray
    drain_voltages: np.ndarray
    currents: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the current map."""
        return self.currents.shape

    def blockade_fraction(self, threshold_fraction: float = 0.01) -> float:
        """Fraction of the map where the device is blockaded."""
        reference = np.abs(self.currents).max()
        if reference <= 0.0:
            return 1.0
        return float(np.mean(np.abs(self.currents) < threshold_fraction * reference))

    def diamond_height(self, threshold_fraction: float = 0.02) -> float:
        """Maximum blockade extent along the drain-voltage axis, in volt.

        Theory: ``e / C_sigma`` for a single SET.
        """
        reference = np.abs(self.currents).max()
        if reference <= 0.0:
            raise AnalysisError("map carries no current anywhere")
        blocked = np.abs(self.currents) < threshold_fraction * reference
        best = 0.0
        for column in range(blocked.shape[1]):
            rows = np.nonzero(blocked[:, column])[0]
            if rows.size:
                extent = self.drain_voltages[rows.max()] - self.drain_voltages[rows.min()]
                best = max(best, float(extent))
        return best

    def diamond_width(self, threshold_fraction: float = 0.02) -> float:
        """Gate-voltage period of the diamond pattern (theory: ``e / C_g``).

        Estimated from the median spacing of the conducting regions along the
        gate axis.  The row at roughly half the maximum drain bias is used: at
        very small bias the conductance peaks can be narrower than the gate
        grid, while at half-bias the conducting regions are wide and the
        periodicity is unambiguous.
        """
        from .oscillations import refine_period_by_peaks

        target = 0.5 * float(np.max(np.abs(self.drain_voltages)))
        candidate_rows = list(np.argsort(np.abs(np.abs(self.drain_voltages) - target)))
        candidate_rows.append(int(np.argmin(np.abs(self.drain_voltages))))
        last_error: AnalysisError | None = None
        for row_index in candidate_rows:
            row = np.abs(self.currents[int(row_index)])
            if row.max() <= 0.0:
                continue
            try:
                return float(refine_period_by_peaks(self.gate_voltages, row))
            except AnalysisError as error:
                last_error = error
        raise AnalysisError(
            "no gate periodicity could be extracted from the stability map"
        ) from last_error


def compute_stability_diagram(set_model, gate_voltages: Sequence[float],
                              drain_voltages: Sequence[float]) -> StabilityDiagram:
    """Compute a stability diagram from any model with ``drain_current(vd, vg)``.

    Both :class:`~repro.compact.set_model.AnalyticSETModel` and
    :class:`~repro.compact.set_model.MasterEquationSETModel` qualify.  Models
    that expose a batched ``drain_current_map(drain, gate)`` (all the SET
    models in :mod:`repro.compact.set_model` do) evaluate the whole map in
    one call — one broadcast expression for the analytic model, one
    structure-reusing master-equation sweep for the exact one — instead of
    ``len(drain) * len(gate)`` scalar calls.
    """
    gate = np.asarray(gate_voltages, dtype=float)
    drain = np.asarray(drain_voltages, dtype=float)
    if gate.size < 2 or drain.size < 2:
        raise AnalysisError("need at least a 2 x 2 grid")
    if hasattr(set_model, "drain_current_map"):
        currents = np.asarray(set_model.drain_current_map(drain, gate),
                              dtype=float)
        if currents.shape != (drain.size, gate.size):
            raise AnalysisError(
                f"drain_current_map returned shape {currents.shape}, "
                f"expected {(drain.size, gate.size)}")
    else:
        currents = np.empty((drain.size, gate.size))
        for row, vd in enumerate(drain):
            for column, vg in enumerate(gate):
                currents[row, column] = set_model.drain_current(float(vd),
                                                                float(vg))
    return StabilityDiagram(gate_voltages=gate, drain_voltages=drain,
                            currents=currents)


def theoretical_diamond(gate_capacitance: float, total_capacitance: float
                        ) -> Tuple[float, float]:
    """Theoretical diamond (width, height) = ``(e/C_g, e/C_sigma)`` in volt."""
    if gate_capacitance <= 0.0 or total_capacitance <= 0.0:
        raise AnalysisError("capacitances must be positive")
    return E_CHARGE / gate_capacitance, E_CHARGE / total_capacitance


__all__ = ["StabilityDiagram", "compute_stability_diagram", "theoretical_diamond"]
