"""Coulomb-blockade analysis: thresholds, gaps and staircases.

These helpers extract the blockade signatures of an Id-Vd sweep: the
threshold voltage where conduction sets in, the width of the zero-current
gap, and the positions of Coulomb-staircase steps.  They back the blockade
parts of experiments E1 and E7 and the SET logic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class BlockadeAnalysis:
    """Blockade descriptors of an Id-Vd characteristic.

    Attributes
    ----------
    positive_threshold:
        Drain voltage (> 0) where the current first exceeds the threshold
        criterion, or ``None`` if the sweep never conducts on that side.
    negative_threshold:
        Same for negative drain voltages.
    gap:
        Total width of the blockaded region in volt (``None`` when either
        side never conducts inside the sweep).
    asymptotic_resistance:
        Slope-derived resistance of the high-bias branch, in ohm.
    """

    positive_threshold: Optional[float]
    negative_threshold: Optional[float]
    gap: Optional[float]
    asymptotic_resistance: float


def conduction_threshold(voltages: Sequence[float], currents: Sequence[float],
                         fraction: float = 0.05, side: str = "positive"
                         ) -> Optional[float]:
    """Voltage where |I| first exceeds ``fraction`` of the maximum |I|.

    Parameters
    ----------
    voltages, currents:
        The Id-Vd sweep (any ordering; it is sorted internally).
    fraction:
        Threshold criterion relative to the largest current magnitude in the
        sweep.
    side:
        ``"positive"`` or ``"negative"`` branch.
    """
    if side not in ("positive", "negative"):
        raise AnalysisError(f"side must be 'positive' or 'negative', got {side!r}")
    v = np.asarray(voltages, dtype=float)
    i = np.asarray(currents, dtype=float)
    if v.shape != i.shape or v.size < 3:
        raise AnalysisError("need matching voltage/current arrays with >= 3 points")
    order = np.argsort(v)
    v, i = v[order], i[order]
    reference = np.abs(i).max()
    if reference <= 0.0:
        return None
    threshold = fraction * reference
    if side == "positive":
        mask = v > 0.0
        candidates = v[mask][np.abs(i[mask]) >= threshold]
        return float(candidates.min()) if candidates.size else None
    mask = v < 0.0
    candidates = v[mask][np.abs(i[mask]) >= threshold]
    return float(candidates.max()) if candidates.size else None


def analyze_blockade(voltages: Sequence[float], currents: Sequence[float],
                     fraction: float = 0.05) -> BlockadeAnalysis:
    """Full blockade analysis of an Id-Vd sweep."""
    v = np.asarray(voltages, dtype=float)
    i = np.asarray(currents, dtype=float)
    positive = conduction_threshold(v, i, fraction, "positive")
    negative = conduction_threshold(v, i, fraction, "negative")
    gap = None
    if positive is not None and negative is not None:
        gap = float(positive - negative)

    order = np.argsort(v)
    v_sorted, i_sorted = v[order], i[order]
    # High-bias resistance from the outer 20% of the sweep on each side.
    count = max(2, v_sorted.size // 5)
    slopes = []
    for segment_v, segment_i in ((v_sorted[-count:], i_sorted[-count:]),
                                 (v_sorted[:count], i_sorted[:count])):
        if np.ptp(segment_v) > 0.0:
            slope = np.polyfit(segment_v, segment_i, 1)[0]
            if slope > 0.0:
                slopes.append(slope)
    if not slopes:
        raise AnalysisError("cannot estimate the asymptotic resistance from this sweep")
    resistance = float(1.0 / np.mean(slopes))
    return BlockadeAnalysis(
        positive_threshold=positive,
        negative_threshold=negative,
        gap=gap,
        asymptotic_resistance=resistance,
    )


def staircase_steps(voltages: Sequence[float], currents: Sequence[float],
                    smoothing: int = 3, prominence: float = 0.2
                    ) -> List[float]:
    """Voltages of Coulomb-staircase steps (peaks of dI/dV).

    Parameters
    ----------
    voltages, currents:
        The Id-Vd sweep on a uniform, increasing grid.
    smoothing:
        Width (samples) of the moving-average filter applied to dI/dV.
    prominence:
        Fraction of the maximum dI/dV a peak must reach to count as a step.
    """
    v = np.asarray(voltages, dtype=float)
    i = np.asarray(currents, dtype=float)
    if v.size < 8:
        raise AnalysisError("need at least 8 samples for staircase analysis")
    conductance = np.gradient(i, v)
    if smoothing > 1:
        kernel = np.ones(smoothing) / smoothing
        conductance = np.convolve(conductance, kernel, mode="same")
    maximum = conductance.max()
    if maximum <= 0.0:
        return []
    threshold = prominence * maximum
    steps: List[float] = []
    for index in range(1, v.size - 1):
        if (conductance[index] >= conductance[index - 1]
                and conductance[index] > conductance[index + 1]
                and conductance[index] >= threshold):
            steps.append(float(v[index]))
    return steps


__all__ = ["BlockadeAnalysis", "analyze_blockade", "conduction_threshold",
           "staircase_steps"]
