"""Charge-sensitivity helpers (electrometer figures of merit).

The device-level electrometer lives in :mod:`repro.devices.electrometer`;
this module provides the generic noise arithmetic it is built on, so the same
formulas can be reused by the RNG analysis and by tests.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from ..constants import E_CHARGE
from ..errors import AnalysisError


def shot_noise_current(current: float, bandwidth: float = 1.0) -> float:
    """RMS shot-noise current ``sqrt(2 e |I| B)`` in ampere."""
    if bandwidth <= 0.0:
        raise AnalysisError("bandwidth must be positive")
    return math.sqrt(2.0 * E_CHARGE * abs(current) * bandwidth)


def charge_resolution(transconductance_per_charge: float, current: float,
                      bandwidth: float = 1.0) -> float:
    """Minimum detectable charge (units of ``e``) for shot-noise-limited readout.

    Parameters
    ----------
    transconductance_per_charge:
        ``dI/dq0`` in ampere per coulomb.
    current:
        Operating-point current in ampere (sets the shot noise).
    bandwidth:
        Measurement bandwidth in hertz.
    """
    if transconductance_per_charge == 0.0:
        return float("inf")
    noise = shot_noise_current(current, bandwidth)
    return noise / abs(transconductance_per_charge) / E_CHARGE


def transconductance(x: Sequence[float], y: Sequence[float]) -> np.ndarray:
    """Numerical derivative dy/dx of a sweep (same length as the inputs)."""
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape or x_array.size < 3:
        raise AnalysisError("need matching arrays with at least 3 points")
    return np.gradient(y_array, x_array)


def best_operating_point(x: Sequence[float], y: Sequence[float]
                         ) -> Tuple[float, float]:
    """Sweep value and derivative magnitude where |dy/dx| is largest."""
    slopes = transconductance(x, y)
    index = int(np.argmax(np.abs(slopes)))
    return float(np.asarray(x, dtype=float)[index]), float(abs(slopes[index]))


def averaging_gain(averaging_time: float, bandwidth: float = 1.0) -> float:
    """Charge-resolution improvement factor from averaging for a given time.

    White-noise-limited: resolution improves as ``1/sqrt(B t)``.
    """
    if averaging_time <= 0.0 or bandwidth <= 0.0:
        raise AnalysisError("averaging time and bandwidth must be positive")
    return math.sqrt(bandwidth * averaging_time)


__all__ = [
    "averaging_gain",
    "best_operating_point",
    "charge_resolution",
    "shot_noise_current",
    "transconductance",
]
