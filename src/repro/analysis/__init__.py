"""Analysis tools: oscillations, blockade, stability diagrams, temperature, randomness."""

from .blockade import (
    BlockadeAnalysis,
    analyze_blockade,
    conduction_threshold,
    staircase_steps,
)
from .oscillations import (
    OscillationAnalysis,
    analyze_oscillations,
    fundamental_component,
    phase_shift_between,
    refine_period_by_peaks,
)
from .randomness import (
    SIGNIFICANCE_LEVEL,
    RandomnessReport,
    approximate_entropy_test,
    block_frequency_test,
    longest_run_of_ones_test,
    monobit_test,
    run_randomness_battery,
    runs_test,
    serial_correlation_profile,
    serial_correlation_test,
)
from .sensitivity import (
    averaging_gain,
    best_operating_point,
    charge_resolution,
    shot_noise_current,
    transconductance,
)
from .stability import StabilityDiagram, compute_stability_diagram, theoretical_diamond
from .temperature import (
    TemperatureScalingRow,
    diameter_for_capacitance,
    diameter_for_temperature,
    island_self_capacitance,
    max_operating_temperature_for_diameter,
    oscillation_visibility,
    simulated_oscillation_visibility,
    temperature_scaling_table,
)

__all__ = [
    "BlockadeAnalysis",
    "OscillationAnalysis",
    "RandomnessReport",
    "SIGNIFICANCE_LEVEL",
    "StabilityDiagram",
    "TemperatureScalingRow",
    "analyze_blockade",
    "analyze_oscillations",
    "approximate_entropy_test",
    "averaging_gain",
    "best_operating_point",
    "block_frequency_test",
    "charge_resolution",
    "compute_stability_diagram",
    "conduction_threshold",
    "diameter_for_capacitance",
    "diameter_for_temperature",
    "fundamental_component",
    "island_self_capacitance",
    "longest_run_of_ones_test",
    "max_operating_temperature_for_diameter",
    "monobit_test",
    "oscillation_visibility",
    "phase_shift_between",
    "refine_period_by_peaks",
    "run_randomness_battery",
    "runs_test",
    "serial_correlation_profile",
    "serial_correlation_test",
    "shot_noise_current",
    "simulated_oscillation_visibility",
    "staircase_steps",
    "temperature_scaling_table",
    "theoretical_diamond",
    "transconductance",
]
