"""Statistical randomness tests for the single-electron RNG (experiment E6).

A compact battery in the spirit of the NIST SP 800-22 suite, restricted to
tests that are meaningful for the 10-100 kbit streams the simulated RNG
produces: monobit frequency, block frequency, runs, longest run of ones,
serial correlation and approximate entropy.  Every test returns a p-value;
the conventional acceptance criterion is ``p >= 0.01``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import special

from ..errors import AnalysisError

#: Conventional significance level for accepting a stream as random.
SIGNIFICANCE_LEVEL = 0.01


def _as_bits(bits: Sequence[int]) -> np.ndarray:
    array = np.asarray(bits, dtype=np.int64)
    if array.ndim != 1 or array.size == 0:
        raise AnalysisError("bit stream must be a non-empty 1-D sequence")
    if np.any((array != 0) & (array != 1)):
        raise AnalysisError("bit stream may only contain 0 and 1")
    return array


def monobit_test(bits: Sequence[int]) -> float:
    """Frequency (monobit) test: are zeros and ones balanced?"""
    array = _as_bits(bits)
    if array.size < 100:
        raise AnalysisError("monobit test needs at least 100 bits")
    partial_sum = np.sum(2 * array - 1)
    statistic = abs(partial_sum) / math.sqrt(array.size)
    return float(special.erfc(statistic / math.sqrt(2.0)))


def block_frequency_test(bits: Sequence[int], block_size: int = 128) -> float:
    """Frequency-within-blocks test."""
    array = _as_bits(bits)
    if block_size < 8:
        raise AnalysisError("block size must be at least 8")
    blocks = array.size // block_size
    if blocks < 4:
        raise AnalysisError("need at least 4 full blocks")
    trimmed = array[:blocks * block_size].reshape(blocks, block_size)
    proportions = trimmed.mean(axis=1)
    chi_squared = 4.0 * block_size * np.sum((proportions - 0.5) ** 2)
    return float(special.gammaincc(blocks / 2.0, chi_squared / 2.0))


def runs_test(bits: Sequence[int]) -> float:
    """Runs test: does the number of 0/1 runs match expectation?"""
    array = _as_bits(bits)
    if array.size < 100:
        raise AnalysisError("runs test needs at least 100 bits")
    proportion = array.mean()
    if abs(proportion - 0.5) >= 2.0 / math.sqrt(array.size):
        return 0.0  # fails the monobit prerequisite
    runs = 1 + int(np.sum(array[1:] != array[:-1]))
    expected = 2.0 * array.size * proportion * (1.0 - proportion)
    numerator = abs(runs - expected)
    denominator = 2.0 * math.sqrt(2.0 * array.size) * proportion * (1.0 - proportion)
    if denominator == 0.0:
        return 0.0
    return float(special.erfc(numerator / denominator))


def longest_run_of_ones_test(bits: Sequence[int]) -> float:
    """Longest-run-of-ones-in-a-block test (NIST parameters for 128-bit blocks)."""
    array = _as_bits(bits)
    block_size = 128
    blocks = array.size // block_size
    if blocks < 4:
        raise AnalysisError("longest-run test needs at least 512 bits")
    categories = [4, 5, 6, 7, 8, 9]
    probabilities = [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124]
    counts = np.zeros(len(categories))
    for index in range(blocks):
        block = array[index * block_size:(index + 1) * block_size]
        longest = _longest_run(block)
        if longest <= categories[0]:
            counts[0] += 1
        elif longest >= categories[-1]:
            counts[-1] += 1
        else:
            counts[categories.index(longest)] += 1
    expected = blocks * np.asarray(probabilities)
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    return float(special.gammaincc((len(categories) - 1) / 2.0, chi_squared / 2.0))


def _longest_run(block: np.ndarray) -> int:
    longest = 0
    current = 0
    for bit in block:
        if bit:
            current += 1
            longest = max(longest, current)
        else:
            current = 0
    return longest


def serial_correlation_test(bits: Sequence[int], lag: int = 1) -> float:
    """Autocorrelation at a given lag, mapped to a two-sided p-value."""
    array = _as_bits(bits).astype(float)
    if array.size <= lag + 10:
        raise AnalysisError("stream too short for the requested lag")
    x = array[:-lag] - array.mean()
    y = array[lag:] - array.mean()
    variance = np.sum((array - array.mean()) ** 2)
    if variance == 0.0:
        return 0.0
    correlation = float(np.sum(x * y) / variance)
    statistic = abs(correlation) * math.sqrt(array.size)
    return float(special.erfc(statistic / math.sqrt(2.0)))


def approximate_entropy_test(bits: Sequence[int], block_length: int = 2) -> float:
    """Approximate-entropy test (NIST SP 800-22 section 2.12)."""
    array = _as_bits(bits)
    n = array.size
    if n < 100:
        raise AnalysisError("approximate-entropy test needs at least 100 bits")

    def phi(m: int) -> float:
        if m == 0:
            return 0.0
        padded = np.concatenate([array, array[:m - 1]]) if m > 1 else array
        counts: Dict[Tuple[int, ...], int] = {}
        for start in range(n):
            pattern = tuple(padded[start:start + m])
            counts[pattern] = counts.get(pattern, 0) + 1
        total = 0.0
        for count in counts.values():
            probability = count / n
            total += probability * math.log(probability)
        return total

    ap_en = phi(block_length) - phi(block_length + 1)
    chi_squared = 2.0 * n * (math.log(2.0) - ap_en)
    return float(special.gammaincc(2 ** (block_length - 1), chi_squared / 2.0))


@dataclass(frozen=True)
class RandomnessReport:
    """Aggregated outcome of the randomness battery."""

    p_values: Dict[str, float]
    significance: float = SIGNIFICANCE_LEVEL

    @property
    def passed(self) -> Dict[str, bool]:
        """Per-test pass/fail at the configured significance level."""
        return {name: p >= self.significance for name, p in self.p_values.items()}

    @property
    def all_passed(self) -> bool:
        """Whether every test passed."""
        return all(self.passed.values())

    @property
    def pass_count(self) -> int:
        """Number of tests passed."""
        return sum(self.passed.values())

    def summary_rows(self) -> List[Tuple[str, float, str]]:
        """``(test, p_value, PASS/FAIL)`` rows for table printing."""
        return [(name, p, "PASS" if p >= self.significance else "FAIL")
                for name, p in self.p_values.items()]


def run_randomness_battery(bits: Sequence[int],
                           significance: float = SIGNIFICANCE_LEVEL
                           ) -> RandomnessReport:
    """Run the full battery on a bit stream and collect the p-values."""
    array = _as_bits(bits)
    p_values = {
        "monobit": monobit_test(array),
        "block_frequency": block_frequency_test(array),
        "runs": runs_test(array),
        "longest_run": longest_run_of_ones_test(array),
        "serial_correlation": serial_correlation_test(array),
        "approximate_entropy": approximate_entropy_test(array),
    }
    return RandomnessReport(p_values=p_values, significance=significance)


__all__ = [
    "RandomnessReport",
    "SIGNIFICANCE_LEVEL",
    "approximate_entropy_test",
    "block_frequency_test",
    "longest_run_of_ones_test",
    "monobit_test",
    "run_randomness_battery",
    "runs_test",
    "serial_correlation_test",
]
