"""Statistical randomness tests for the single-electron RNG (experiment E6).

A compact battery in the spirit of the NIST SP 800-22 suite, restricted to
tests that are meaningful for the 10-100 kbit streams the simulated RNG
produces: monobit frequency, block frequency, runs, longest run of ones,
serial correlation and approximate entropy.  Every test returns a p-value;
the conventional acceptance criterion is ``p >= 0.01``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import special

from ..errors import AnalysisError

#: Conventional significance level for accepting a stream as random.
SIGNIFICANCE_LEVEL = 0.01


def _as_bits(bits: Sequence[int]) -> np.ndarray:
    array = np.asarray(bits, dtype=np.int64)
    if array.ndim != 1 or array.size == 0:
        raise AnalysisError("bit stream must be a non-empty 1-D sequence")
    if np.any((array != 0) & (array != 1)):
        raise AnalysisError("bit stream may only contain 0 and 1")
    return array


def monobit_test(bits: Sequence[int]) -> float:
    """Frequency (monobit) test: are zeros and ones balanced?"""
    array = _as_bits(bits)
    if array.size < 100:
        raise AnalysisError("monobit test needs at least 100 bits")
    partial_sum = np.sum(2 * array - 1)
    statistic = abs(partial_sum) / math.sqrt(array.size)
    return float(special.erfc(statistic / math.sqrt(2.0)))


def block_frequency_test(bits: Sequence[int], block_size: int = 128) -> float:
    """Frequency-within-blocks test."""
    array = _as_bits(bits)
    if block_size < 8:
        raise AnalysisError("block size must be at least 8")
    blocks = array.size // block_size
    if blocks < 4:
        raise AnalysisError("need at least 4 full blocks")
    trimmed = array[:blocks * block_size].reshape(blocks, block_size)
    proportions = trimmed.mean(axis=1)
    chi_squared = 4.0 * block_size * np.sum((proportions - 0.5) ** 2)
    return float(special.gammaincc(blocks / 2.0, chi_squared / 2.0))


def runs_test(bits: Sequence[int]) -> float:
    """Runs test: does the number of 0/1 runs match expectation?"""
    array = _as_bits(bits)
    if array.size < 100:
        raise AnalysisError("runs test needs at least 100 bits")
    proportion = array.mean()
    if abs(proportion - 0.5) >= 2.0 / math.sqrt(array.size):
        return 0.0  # fails the monobit prerequisite
    runs = 1 + int(np.sum(array[1:] != array[:-1]))
    expected = 2.0 * array.size * proportion * (1.0 - proportion)
    numerator = abs(runs - expected)
    denominator = 2.0 * math.sqrt(2.0 * array.size) * proportion * (1.0 - proportion)
    if denominator == 0.0:
        return 0.0
    return float(special.erfc(numerator / denominator))


def longest_run_of_ones_test(bits: Sequence[int]) -> float:
    """Longest-run-of-ones-in-a-block test (NIST parameters for 128-bit blocks).

    The per-block longest runs are extracted for all blocks at once: the
    blocks are zero-padded on both sides, run boundaries come from one
    ``diff`` over the whole matrix, and the per-block maximum run length from
    a single ``maximum.at`` scatter — no Python loop over blocks or bits.
    """
    array = _as_bits(bits)
    block_size = 128
    blocks = array.size // block_size
    if blocks < 4:
        raise AnalysisError("longest-run test needs at least 512 bits")
    categories = np.arange(4, 10)
    probabilities = [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124]
    trimmed = array[:blocks * block_size].reshape(blocks, block_size)
    longest = _longest_runs(trimmed)
    # The categories are contiguous, so binning is a clip plus a bincount.
    clipped = np.clip(longest, categories[0], categories[-1])
    counts = np.bincount(clipped - categories[0],
                         minlength=categories.size).astype(float)
    expected = blocks * np.asarray(probabilities)
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    return float(special.gammaincc((categories.size - 1) / 2.0, chi_squared / 2.0))


def _longest_runs(blocks: np.ndarray) -> np.ndarray:
    """Longest run of ones in every row of a 0/1 matrix, vectorized."""
    rows = blocks.shape[0]
    padded = np.zeros((rows, blocks.shape[1] + 2), dtype=np.int64)
    padded[:, 1:-1] = blocks
    changes = np.diff(padded, axis=1)
    start_rows, start_columns = np.nonzero(changes == 1)
    end_columns = np.nonzero(changes == -1)[1]
    # Runs alternate start/end within each row, so the k-th start pairs with
    # the k-th end in row-major order.
    longest = np.zeros(rows, dtype=np.int64)
    np.maximum.at(longest, start_rows, end_columns - start_columns)
    return longest


def serial_correlation_test(bits: Sequence[int], lag: int = 1) -> float:
    """Autocorrelation at a given lag, mapped to a two-sided p-value."""
    array = _as_bits(bits).astype(float)
    if array.size <= lag + 10:
        raise AnalysisError("stream too short for the requested lag")
    x = array[:-lag] - array.mean()
    y = array[lag:] - array.mean()
    variance = np.sum((array - array.mean()) ** 2)
    if variance == 0.0:
        return 0.0
    correlation = float(np.sum(x * y) / variance)
    statistic = abs(correlation) * math.sqrt(array.size)
    return float(special.erfc(statistic / math.sqrt(2.0)))


def serial_correlation_profile(bits: Sequence[int],
                               max_lag: int = 16) -> np.ndarray:
    """Autocorrelation coefficients at lags ``1 .. max_lag``, vectorized.

    Each coefficient matches :func:`serial_correlation_test`'s statistic at
    that lag exactly (same centring, same normalisation) but the whole
    profile is computed as ``max_lag`` array dot products over the centred
    stream — the correlation formulation — instead of a Python loop over
    every bit.
    """
    array = _as_bits(bits).astype(float)
    if max_lag < 1:
        raise AnalysisError("max_lag must be at least 1")
    if array.size <= max_lag + 10:
        raise AnalysisError("stream too short for the requested maximum lag")
    centred = array - array.mean()
    variance = float(np.sum(centred ** 2))
    if variance == 0.0:
        return np.zeros(max_lag)
    return np.array([float(centred[:-lag] @ centred[lag:]) / variance
                     for lag in range(1, max_lag + 1)])


def approximate_entropy_test(bits: Sequence[int], block_length: int = 2) -> float:
    """Approximate-entropy test (NIST SP 800-22 section 2.12).

    The ``m``-bit pattern frequencies are counted without a Python loop over
    the stream: every overlapping window is encoded as a base-2 integer
    through a strided sliding-window view and the pattern histogram is one
    ``bincount`` — the O(n) ``range(n)`` tuple-building loop of the original
    implementation collapsed to three array operations.
    """
    array = _as_bits(bits)
    n = array.size
    if n < 100:
        raise AnalysisError("approximate-entropy test needs at least 100 bits")

    def phi(m: int) -> float:
        if m == 0:
            return 0.0
        padded = np.concatenate([array, array[:m - 1]]) if m > 1 else array
        windows = np.lib.stride_tricks.sliding_window_view(padded, m)
        weights = 1 << np.arange(m - 1, -1, -1, dtype=np.int64)
        codes = windows @ weights
        if (1 << m) <= 4 * n:
            counts = np.bincount(codes, minlength=1 << m)
            counts = counts[counts > 0]
        else:
            # A 2^m-slot histogram would dwarf the stream itself for large
            # block lengths; count only the (at most n) occurring patterns,
            # as the original dictionary implementation did.
            counts = np.unique(codes, return_counts=True)[1]
        probabilities = counts / n
        return float(np.sum(probabilities * np.log(probabilities)))

    ap_en = phi(block_length) - phi(block_length + 1)
    chi_squared = 2.0 * n * (math.log(2.0) - ap_en)
    return float(special.gammaincc(2 ** (block_length - 1), chi_squared / 2.0))


@dataclass(frozen=True)
class RandomnessReport:
    """Aggregated outcome of the randomness battery."""

    p_values: Dict[str, float]
    significance: float = SIGNIFICANCE_LEVEL

    @property
    def passed(self) -> Dict[str, bool]:
        """Per-test pass/fail at the configured significance level."""
        return {name: p >= self.significance for name, p in self.p_values.items()}

    @property
    def all_passed(self) -> bool:
        """Whether every test passed."""
        return all(self.passed.values())

    @property
    def pass_count(self) -> int:
        """Number of tests passed."""
        return sum(self.passed.values())

    def summary_rows(self) -> List[Tuple[str, float, str]]:
        """``(test, p_value, PASS/FAIL)`` rows for table printing."""
        return [(name, p, "PASS" if p >= self.significance else "FAIL")
                for name, p in self.p_values.items()]


def run_randomness_battery(bits: Sequence[int],
                           significance: float = SIGNIFICANCE_LEVEL
                           ) -> RandomnessReport:
    """Run the full battery on a bit stream and collect the p-values."""
    array = _as_bits(bits)
    p_values = {
        "monobit": monobit_test(array),
        "block_frequency": block_frequency_test(array),
        "runs": runs_test(array),
        "longest_run": longest_run_of_ones_test(array),
        "serial_correlation": serial_correlation_test(array),
        "approximate_entropy": approximate_entropy_test(array),
    }
    return RandomnessReport(p_values=p_values, significance=significance)


__all__ = [
    "RandomnessReport",
    "SIGNIFICANCE_LEVEL",
    "approximate_entropy_test",
    "block_frequency_test",
    "longest_run_of_ones_test",
    "monobit_test",
    "run_randomness_battery",
    "runs_test",
    "serial_correlation_profile",
    "serial_correlation_test",
]
