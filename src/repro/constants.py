"""Physical constants used throughout the single-electronics toolkit.

All values are CODATA 2018 exact or recommended values, in SI units.  The
orthodox theory of single-electron tunnelling is formulated entirely in terms
of the elementary charge ``E_CHARGE``, Boltzmann's constant ``BOLTZMANN`` and
Planck's constant ``PLANCK`` (through the resistance quantum ``R_QUANTUM``),
so these four numbers are the only physics inputs of the whole package.
"""

from __future__ import annotations

import math

#: Elementary charge ``e`` in coulomb (exact, SI 2019 definition).
E_CHARGE: float = 1.602176634e-19

#: Boltzmann constant ``k_B`` in joule per kelvin (exact, SI 2019 definition).
BOLTZMANN: float = 1.380649e-23

#: Planck constant ``h`` in joule second (exact, SI 2019 definition).
PLANCK: float = 6.62607015e-34

#: Reduced Planck constant ``hbar`` in joule second.
HBAR: float = PLANCK / (2.0 * math.pi)

#: Resistance quantum ``R_K = h / e**2`` in ohm (von Klitzing constant).
#:
#: Tunnel junctions must have a resistance well above ``R_QUANTUM`` for the
#: electron number on an island to be a good quantum number (the orthodox
#: theory requirement ``R_T >> R_K``).
R_QUANTUM: float = PLANCK / E_CHARGE**2

#: Conventional minimum ratio ``R_T / R_K`` for the orthodox theory to hold.
ORTHODOX_RESISTANCE_RATIO: float = 10.0

#: Vacuum permittivity ``epsilon_0`` in farad per metre.
VACUUM_PERMITTIVITY: float = 8.8541878128e-12

#: Conventional charging-energy margin for reliable single-electron operation:
#: ``E_C >= OPERATING_MARGIN * k_B * T`` (the factor 40 is the rule of thumb
#: quoted throughout the single-electronics literature, e.g. Likharev 1999).
OPERATING_MARGIN: float = 40.0


def charging_energy(total_capacitance: float) -> float:
    """Return the single-electron charging energy ``e**2 / (2 C)`` in joule.

    Parameters
    ----------
    total_capacitance:
        Total capacitance of the island in farad.  Must be positive.
    """
    if total_capacitance <= 0.0:
        raise ValueError(
            f"total_capacitance must be positive, got {total_capacitance!r}"
        )
    return E_CHARGE**2 / (2.0 * total_capacitance)


def thermal_energy(temperature: float) -> float:
    """Return ``k_B * T`` in joule for a temperature in kelvin (``T >= 0``)."""
    if temperature < 0.0:
        raise ValueError(f"temperature must be non-negative, got {temperature!r}")
    return BOLTZMANN * temperature


def max_operating_temperature(total_capacitance: float,
                              margin: float = OPERATING_MARGIN) -> float:
    """Maximum operating temperature of a single-electron device in kelvin.

    Uses the standard criterion ``e**2 / (2 C_total) >= margin * k_B * T``.
    With the default margin of 40 this is the figure of merit behind the
    paper's statement that *room temperature operation requires structures in
    the few nanometre regime*.
    """
    if margin <= 0.0:
        raise ValueError(f"margin must be positive, got {margin!r}")
    return charging_energy(total_capacitance) / (margin * BOLTZMANN)
