"""Exception hierarchy for the single-electronics toolkit.

All library-specific failures derive from :class:`ReproError`, so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish netlist problems from solver problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class CircuitError(ReproError):
    """A circuit/netlist is malformed (unknown node, duplicate element, ...)."""


class ValidationError(CircuitError):
    """A structurally complete circuit fails a physical validity check.

    Examples: an island with no tunnel junction attached, a junction with
    non-positive capacitance, a tunnel resistance below the quantum of
    resistance.
    """


class NetlistParseError(CircuitError):
    """A text netlist could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None) -> None:
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class SolverError(ReproError):
    """A numerical solver failed (singular matrix, no convergence, ...)."""


class ConvergenceError(SolverError):
    """An iterative solver exhausted its iteration budget without converging."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        self.iterations = iterations
        self.residual = residual
        super().__init__(message)


class StateSpaceError(ReproError):
    """The master-equation state space is invalid or too large to enumerate."""


class SimulationError(ReproError):
    """A Monte-Carlo or transient simulation could not proceed."""


class AnalysisError(ReproError):
    """Post-processing/analysis of simulation results failed.

    Raised for instance when an oscillation-period extraction is attempted on
    a sweep that does not contain at least one full period.
    """


class EncodingError(ReproError):
    """A logic-encoding operation failed (undecodable symbol, bad alphabet)."""


class ResilienceError(ReproError):
    """The fault-tolerant execution layer itself failed (bad policy, bad site)."""


class FaultInjected(ResilienceError):
    """The deterministic fault-injection harness fired at an armed site.

    This is the *default* exception injected by
    :class:`repro.resilience.faults.FaultInjector` when a site is armed
    without an explicit ``error``; chaos tests arm concrete solver/IO
    exception types when they want to exercise a specific ``except`` clause,
    and use this type when the injected fault is supposed to propagate (a
    simulated crash).
    """


class CheckpointError(ResilienceError):
    """A checkpointed sweep could not be sharded, persisted, or merged."""


class PointTimeout(ResilienceError):
    """A per-point solve exceeded the failure policy's ``point_timeout_s``."""
